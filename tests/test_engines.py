"""Differential equivalence of the reference and fast engines.

The fast engine is only allowed to exist because it is *observationally
identical* to the reference engine: same per-beat clock values, same
message counts, same convergence beats, same RNG stream consumption — with
and without an adversary, across transient faults and phantom storms.
"""

from __future__ import annotations

import pytest

from repro.adversary import EquivocatorAdversary, SplitWorldAdversary
from repro.analysis.convergence import ClockConvergenceMonitor
from repro.analysis.experiments import TrialConfig, run_trial
from repro.coin.feldman_micali import FeldmanMicaliCoin
from repro.coin.oracle import OracleCoin
from repro.core.clock_sync import SSByzClockSync
from repro.errors import ConfigurationError
from repro.faults.network_faults import inject_phantom_storm
from repro.net.component import Component
from repro.net.engine import (
    ENGINES,
    Engine,
    FastEngine,
    FastOutbox,
    ReferenceEngine,
    resolve_engine,
)
from repro.net.simulator import Simulation

SEEDS = range(10)


def _observe(engine: str, seed: int, adversary_factory, *, beats: int = 40,
             storm_at: int | None = None, coin: str = "oracle"):
    """Run one scrambled clock-sync run; return every observable."""
    if coin == "gvss":
        coin_factory = lambda: FeldmanMicaliCoin(4, 1)
    else:
        coin_factory = lambda: OracleCoin(p0=0.4, p1=0.4, rounds=2)
    sim = Simulation(
        4,
        1,
        lambda i: SSByzClockSync(6, coin_factory),
        adversary=adversary_factory(),
        seed=seed,
        engine=engine,
    )
    monitor = ClockConvergenceMonitor(6)
    sim.add_monitor(monitor)
    sim.scramble()
    if storm_at is None:
        sim.run(beats)
    else:
        sim.run(storm_at)
        sim.scramble()
        inject_phantom_storm(sim, ["root", "root/A/A1", "bogus/path"], count=60)
        sim.run(beats - storm_at)
    per_beat = [sim.stats.messages_at_beat(b) for b in range(beats)]
    return (
        monitor.history,
        monitor.convergence_beat(),
        sim.stats.total_messages,
        sim.stats.honest_messages,
        sim.stats.byzantine_messages,
        per_beat,
        dict(sim.stats.per_path_prefix),
    )


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_free_runs_identical(self, seed):
        reference = _observe("reference", seed, lambda: None)
        fast = _observe("fast", seed, lambda: None)
        assert reference == fast

    @pytest.mark.parametrize("seed", SEEDS)
    def test_adversarial_runs_identical(self, seed):
        reference = _observe("reference", seed, EquivocatorAdversary)
        fast = _observe("fast", seed, EquivocatorAdversary)
        assert reference == fast

    @pytest.mark.parametrize("seed", range(4))
    def test_scramble_and_phantom_storm_identical(self, seed):
        """Mid-run transient fault + phantom burst: engines stay in lockstep."""
        for adversary_factory in (lambda: None, SplitWorldAdversary):
            reference = _observe(
                "reference", seed, adversary_factory, beats=60, storm_at=20
            )
            fast = _observe("fast", seed, adversary_factory, beats=60, storm_at=20)
            assert reference == fast

    @pytest.mark.parametrize("seed", range(3))
    def test_gvss_coin_point_to_point_traffic_identical(self, seed):
        """The GVSS coin's private dealings exercise the p2p merge path."""
        reference = _observe("reference", seed, lambda: None, coin="gvss")
        fast = _observe("fast", seed, lambda: None, coin="gvss")
        assert reference == fast

    def test_run_trial_identical_across_engines(self):
        def config(engine):
            return TrialConfig(
                n=4,
                f=1,
                k=6,
                protocol_factory=lambda i: SSByzClockSync(
                    6, lambda: OracleCoin(p0=0.4, p1=0.4, rounds=2)
                ),
                max_beats=120,
                engine=engine,
            )

        for seed in range(5):
            reference = run_trial(config("reference"), seed)
            fast = run_trial(config("fast"), seed)
            assert reference == fast


class MixedSender(Component):
    """Broadcast *and* point-to-point on one path: stresses merge order."""

    modulus = 1 << 30

    def __init__(self):
        super().__init__()
        self.value = 0
        self.log: list[tuple[int, object]] = []

    @property
    def clock_value(self):
        return self.value

    def on_send(self, ctx):
        ctx.send((ctx.node_id + 1) % ctx.n, ("direct", self.value))
        ctx.broadcast(("bcast", self.value))
        ctx.send((ctx.node_id + 2) % ctx.n, ("late", self.value))

    def on_update(self, ctx):
        self.log.append(tuple((e.sender, e.payload) for e in ctx.inbox))
        self.value = (self.value + len(ctx.inbox)) % self.modulus

    def scramble(self, rng):
        self.value = rng.randrange(100)


class TestDeliveryOrder:
    def test_mixed_broadcast_and_p2p_order_matches_reference(self):
        def logs(engine):
            sim = Simulation(4, 1, lambda i: MixedSender(), seed=3, engine=engine)
            sim.scramble()
            sim.run(6)
            return {i: node.root.log for i, node in sim.nodes.items()}

        assert logs("reference") == logs("fast")

    def test_phantoms_after_regular_traffic_for_same_sender(self):
        """A phantom claiming an honest sender sorts after the real message."""

        def logs(engine):
            sim = Simulation(4, 1, lambda i: MixedSender(), seed=0, engine=engine)
            from repro.net.message import Envelope

            sim.inject_phantoms(
                [Envelope(2, 1, "root", ("phantom", 9), 0),
                 Envelope(0, 1, "root", ("phantom", 8), 0)]
            )
            sim.run(2)
            return {i: node.root.log for i, node in sim.nodes.items()}

        assert logs("reference") == logs("fast")


class TestEngineApi:
    def test_default_engine_is_fast(self):
        sim = Simulation(4, 1, lambda i: MixedSender())
        assert sim.engine.name == "fast"

    def test_reference_engine_selectable(self):
        sim = Simulation(4, 1, lambda i: MixedSender(), engine="reference")
        assert sim.engine.name == "reference"
        assert isinstance(sim.engine, ReferenceEngine)

    def test_engine_instance_accepted(self):
        engine = FastEngine()
        sim = Simulation(4, 1, lambda i: MixedSender(), engine=engine)
        assert sim.engine is engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulation(4, 1, lambda i: MixedSender(), engine="warp")
        with pytest.raises(ConfigurationError):
            resolve_engine(42)  # type: ignore[arg-type]

    def test_engine_instances_are_single_use(self):
        from repro.net.bulk import BulkEngine

        for engine_factory in (FastEngine, ReferenceEngine, BulkEngine):
            engine = engine_factory()
            Simulation(4, 1, lambda i: MixedSender(), engine=engine)
            with pytest.raises(ConfigurationError):
                Simulation(4, 1, lambda i: MixedSender(), engine=engine)

    def test_registry_names(self):
        assert set(ENGINES) == {"reference", "fast", "bulk"}
        for name in ENGINES:
            engine = resolve_engine(name)
            assert isinstance(engine, Engine)
            assert isinstance(engine.description, str) and engine.description

    def test_stats_shared_identity(self):
        sim = Simulation(4, 1, lambda i: MixedSender())
        stats = sim.stats
        sim.run(2)
        assert sim.stats is stats
        assert stats.total_messages > 0


class TestFastOutbox:
    def test_full_broadcast_is_one_record(self):
        outbox = FastOutbox(4)
        outbox.broadcast([0, 1, 2, 3], "root", "x")
        assert outbox.drain() == [("root", "x", None)]

    def test_partial_broadcast_expands(self):
        outbox = FastOutbox(4)
        outbox.broadcast([1, 3], "root", "x")
        assert outbox.drain() == [("root", "x", 1), ("root", "x", 3)]

    def test_send_records_receiver(self):
        outbox = FastOutbox(4)
        outbox.send(2, "root/A", "y")
        assert len(outbox) == 1
        assert outbox.drain() == [("root/A", "y", 2)]
        assert outbox.drain() == []
