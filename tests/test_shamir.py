"""Shamir and symmetric-bivariate sharing tests (GVSS substrate)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coin.field import PrimeField
from repro.coin.polynomial import evaluate, interpolate
from repro.coin.shamir import (
    SymmetricBivariate,
    node_point,
    reconstruct,
    reconstruct_with_errors,
    share_secret,
)
from repro.errors import ConfigurationError

FIELD = PrimeField(97)


class TestUnivariateSharing:
    @given(
        st.integers(min_value=0, max_value=96),
        st.integers(min_value=0, max_value=50),
    )
    def test_share_reconstruct_roundtrip(self, secret, seed):
        rng = random.Random(seed)
        shares = share_secret(FIELD, secret, 2, range(7), rng)
        assert reconstruct(FIELD, shares) == secret

    def test_any_degree_plus_one_shares_suffice(self):
        rng = random.Random(1)
        shares = share_secret(FIELD, 33, 2, range(7), rng)
        subset = {i: shares[i] for i in (0, 3, 6)}
        assert reconstruct(FIELD, subset) == 33

    def test_too_few_recipients_rejected(self):
        with pytest.raises(ConfigurationError):
            share_secret(FIELD, 1, 3, range(3), random.Random(0))

    def test_privacy_f_shares_reveal_nothing(self):
        """Any f shares of a degree-f sharing are consistent with *every*
        candidate secret — the information-theoretic hiding GVSS's
        unpredictability rests on."""
        rng = random.Random(2)
        degree = 2
        shares = share_secret(FIELD, 71, degree, range(7), rng)
        observed = [(node_point(i), shares[i]) for i in (1, 4)]  # f=2 shares
        for candidate in range(0, 97, 7):
            poly = interpolate(FIELD, observed + [(0, candidate)])
            assert len(poly) <= degree + 1  # a valid degree-f explanation

    def test_reconstruct_with_errors(self):
        rng = random.Random(3)
        shares = share_secret(FIELD, 5, 2, range(9), rng)
        shares[4] = (shares[4] + 17) % 97
        shares[7] = (shares[7] + 3) % 97
        assert reconstruct_with_errors(FIELD, shares, 2, 2) == 5


class TestNodePoint:
    def test_never_zero(self):
        assert all(node_point(i) != 0 for i in range(100))

    def test_distinct(self):
        points = [node_point(i) for i in range(50)]
        assert len(set(points)) == 50


class TestSymmetricBivariate:
    def test_rejects_asymmetric(self):
        with pytest.raises(ConfigurationError):
            SymmetricBivariate(FIELD, [[1, 2], [3, 4]])

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            SymmetricBivariate(FIELD, [[1, 2, 3], [2, 1, 1]])

    @given(
        st.integers(min_value=0, max_value=96),
        st.integers(min_value=0, max_value=40),
    )
    def test_secret_at_origin(self, secret, seed):
        s = SymmetricBivariate.random(FIELD, secret, 3, random.Random(seed))
        assert s.secret == secret
        assert s.evaluate(0, 0) == secret

    @given(st.integers(min_value=0, max_value=40))
    def test_symmetry(self, seed):
        s = SymmetricBivariate.random(FIELD, 9, 2, random.Random(seed))
        for x in range(5):
            for y in range(5):
                assert s.evaluate(x, y) == s.evaluate(y, x)

    @given(st.integers(min_value=0, max_value=40))
    def test_rows_match_evaluation(self, seed):
        s = SymmetricBivariate.random(FIELD, 9, 2, random.Random(seed))
        for node_id in range(5):
            row = s.row(node_id)
            for y in range(6):
                assert evaluate(FIELD, row, y) == s.evaluate(
                    node_point(node_id), y
                )

    def test_pairwise_row_consistency(self):
        """row_i(x_j) == row_j(x_i): the GVSS exchange-round check."""
        s = SymmetricBivariate.random(FIELD, 4, 3, random.Random(11))
        for i in range(6):
            for j in range(6):
                assert evaluate(FIELD, s.row(i), node_point(j)) == evaluate(
                    FIELD, s.row(j), node_point(i)
                )

    def test_zero_shares_interpolate_to_secret(self):
        """The recover phase: constant terms of rows reconstruct S(.,0)."""
        s = SymmetricBivariate.random(FIELD, 23, 2, random.Random(12))
        points = [
            (node_point(i), evaluate(FIELD, s.row(i), 0)) for i in range(3)
        ]
        assert evaluate(FIELD, interpolate(FIELD, points), 0) == 23

    def test_row_degree_bounded(self):
        s = SymmetricBivariate.random(FIELD, 1, 4, random.Random(13))
        assert all(len(s.row(i)) <= 5 for i in range(8))
