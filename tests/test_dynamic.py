"""Dynamic-world robustness: churn, mobility, adaptive adversaries.

The tentpole contract under test: membership churn, the waypoint-mobility
link model and traffic-adaptive adversaries are *simulation-level* faults
— applied by :class:`~repro.net.simulator.Simulation`, driven by keyed
randomness — so every dynamic-world scenario is bit-identical across the
reference, fast and bulk engines, at every seed, at any campaign worker
count.  Alongside the differential matrix: the churn state machine's
validation surface, the Definition-3.2 re-convergence bound for nodes
that recover with scrambled state, the scramble-inactive regression, and
the CLI's exit-2 behavior for malformed schedules.
"""

from __future__ import annotations

import pytest

from repro.adversary import AdaptiveEchoAdversary, EquivocatorAdversary
from repro.analysis.campaign import (
    ADVERSARY_REGISTRY,
    LINK_REGISTRY,
    ScenarioSpec,
    run_campaign,
    scenario_grid,
)
from repro.analysis.convergence import ClockConvergenceMonitor
from repro.analysis.experiments import TrialConfig, run_trial
from repro.cli import main
from repro.core.clock_sync import SSByzClockSync
from repro.coin.oracle import OracleCoin
from repro.errors import ConfigurationError
from repro.faults import (
    CHURN_EVENT_KINDS,
    ChurnSchedule,
    MobilityLinks,
    parse_churn_events,
)
from repro.net.engine import ENGINES
from repro.net.linkmodel import LINK_MODELS
from repro.net.simulator import Simulation

SEEDS = range(10)

#: Churn over nodes {0, 1, 2} only — safe both fault-free and with an
#: adversary (at n=4, f=1 every registered adversary corrupts node 3).
CHURN = (
    (5, "crash", (0,)),
    (9, "join", (2,)),
    (12, "recover", (0,)),
    (20, "leave", (1,)),
)


def _coin_factory():
    return OracleCoin(p0=0.4, p1=0.4, rounds=2)


def _factory(i):
    return SSByzClockSync(6, _coin_factory)


def _config(*, adversary=None, link="perfect", link_params=(), churn=(),
            engine="fast", max_beats=60):
    adversary_factory = (lambda: None) if adversary is None else adversary
    return TrialConfig(
        n=4, f=1, k=6,
        protocol_factory=_factory,
        adversary_factory=adversary_factory,
        max_beats=max_beats,
        early_stop=False,
        engine=engine,
        link=link,
        link_params=link_params,
        churn=churn,
    )


class TestChurnSchedule:
    def test_event_kinds_frozen(self):
        assert set(CHURN_EVENT_KINDS) == {"crash", "recover", "join", "leave"}

    def test_events_sorted_and_queryable(self):
        schedule = ChurnSchedule([(12, "recover", (0,)), (5, "crash", (0,))])
        assert [event.beat for event in schedule.events] == [5, 12]
        assert schedule.last_event_beat == 12
        assert [e.kind for e in schedule.events_at(5)] == ["crash"]
        assert schedule.events_at(6) == ()
        assert schedule.touched_ids == {0}
        assert schedule.joining_ids == frozenset()

    def test_join_targets_are_initially_absent(self):
        schedule = ChurnSchedule([(3, "join", (2, 5))])
        assert schedule.joining_ids == {2, 5}

    def test_normalized_round_trips(self):
        schedule = ChurnSchedule(CHURN)
        assert schedule.normalized() == tuple(CHURN)
        assert ChurnSchedule(schedule.normalized()).describe() == (
            schedule.describe()
        )

    def test_coerce(self):
        assert ChurnSchedule.coerce(None) is None
        assert ChurnSchedule.coerce(()) is None
        schedule = ChurnSchedule(CHURN)
        assert ChurnSchedule.coerce(schedule) is schedule
        assert ChurnSchedule.coerce(CHURN).normalized() == tuple(CHURN)

    @pytest.mark.parametrize("events", [
        [(5, "explode", (0,))],           # unknown kind
        [(-1, "crash", (0,))],            # negative beat
        [(5, "crash", ())],               # no ids
        [(5, "crash", (0, 0))],           # duplicate ids
        [(5, "crash", (-2,))],            # negative id
        [],                               # empty schedule
        [(5, "recover", (0,))],           # recover without crash
        [(5, "crash", (0,)), (6, "crash", (0,))],      # crash twice
        [(5, "join", (0,)), (4, "crash", (0,))],       # act before join
        [(5, "leave", (0,)), (9, "recover", (0,))],    # return after leave
    ])
    def test_impossible_schedules_rejected(self, events):
        with pytest.raises(ConfigurationError):
            ChurnSchedule(events)

    def test_out_of_range_and_faulty_ids_rejected(self):
        with pytest.raises(ConfigurationError, match="n=4"):
            Simulation(4, 1, _factory, churn=[(5, "crash", (7,))])
        with pytest.raises(ConfigurationError, match="faulty"):
            Simulation(
                4, 1, _factory, adversary=EquivocatorAdversary(),
                churn=[(5, "crash", (3,))],
            )

    def test_parse_churn_events(self):
        schedule = parse_churn_events(["25:crash:0,1", "40:recover:0,1"])
        assert schedule.normalized() == (
            (25, "crash", (0, 1)), (40, "recover", (0, 1)),
        )
        for bad in ("garbage", "25:crash", "x:crash:0", "25:crash:zero",
                    "25:warp:0"):
            with pytest.raises(ConfigurationError):
                parse_churn_events([bad])


class TestMembershipSemantics:
    def test_active_set_follows_schedule(self):
        sim = Simulation(4, 1, _factory, churn=CHURN)
        assert sim.active_ids == {0, 1, 3}  # 2 joins later
        expected = {
            4: {0, 1, 3}, 5: {1, 3}, 9: {1, 2, 3},
            12: {0, 1, 2, 3}, 20: {0, 2, 3},
        }
        for _ in range(25):
            beat = sim.beat
            sim.run_beat()
            if beat in expected:
                assert sim.active_ids == expected[beat], beat
        assert set(sim.active_nodes()) == {0, 2, 3}
        assert sim.is_active(0) and not sim.is_active(1)
        assert set(sim.active_roots()) == {0, 2, 3}

    def test_static_world_active_view_is_nodes(self):
        sim = Simulation(4, 1, _factory)
        assert sim.active_nodes() is sim.nodes

    def test_recovered_node_comes_back_scrambled(self, monkeypatch):
        # Recovery must redraw the rebooted node's state from the
        # "faults" stream, not thaw the frozen pre-crash tower.  Joins
        # boot pristine: no scramble for node 2.
        from repro.net.node import Node

        scrambled = []
        original = Node.scramble
        monkeypatch.setattr(
            Node,
            "scramble",
            lambda self, rng: (
                scrambled.append((self.node_id,)), original(self, rng)
            )[1],
        )
        churn = (
            (5, "crash", (0,)), (9, "join", (2,)), (12, "recover", (0,))
        )
        sim = Simulation(4, 1, _factory, seed=3, churn=churn)
        sim.run(12)
        assert scrambled == []  # crash freezes; join boots pristine
        sim.run_beat()  # recover applies at the start of beat 12
        assert scrambled == [(0,)]
        assert 0 in sim.active_ids

    def test_scramble_inactive_node_rejected(self):
        sim = Simulation(4, 1, _factory, churn=[(0, "crash", (1,))])
        sim.run_beat()
        with pytest.raises(ConfigurationError, match="inactive"):
            sim.scramble([1])

    def test_scramble_not_yet_joined_node_rejected(self):
        sim = Simulation(4, 1, _factory, churn=[(9, "join", (2,))])
        with pytest.raises(ConfigurationError, match="inactive"):
            sim.scramble([2])
        sim.scramble()  # default target set skips the pending node

    def test_scramble_unknown_id_error_unchanged(self):
        sim = Simulation(4, 1, _factory)
        with pytest.raises(ConfigurationError):
            sim.scramble([9])


class TestDifferentialBitIdentity:
    """Every dynamic-world scenario, bit-identical across all engines."""

    SCENARIOS = {
        "churn": dict(churn=CHURN),
        "churn-adversary": dict(churn=CHURN, adversary=EquivocatorAdversary),
        "churn-lossy": dict(churn=CHURN, link="lossy",
                            link_params=(("loss", 0.3),)),
        "mobility": dict(link="mobility"),
        "mobility-adaptive": dict(link="mobility",
                                  adversary=AdaptiveEchoAdversary),
        "churn-mobility-adaptive": dict(churn=CHURN, link="mobility",
                                        adversary=AdaptiveEchoAdversary),
    }

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_engines_agree(self, name):
        scenario = self.SCENARIOS[name]
        for seed in SEEDS:
            results = {
                engine: run_trial(_config(engine=engine, **scenario), seed)
                for engine in sorted(ENGINES)
            }
            reference = results.pop("reference")
            for engine, result in results.items():
                assert result == reference, (name, seed, engine)


class TestReconvergenceBound:
    def test_recovered_nodes_reconverge_within_bound(self):
        """Definition 3.2 from any state: a crash + scrambled recovery is
        just another transient fault, so re-convergence stays within the
        same band as initial convergence."""
        churn = ((20, "crash", (0, 1)), (30, "recover", (0, 1)))
        for seed in SEEDS:
            sim = Simulation(7, 2, lambda i: SSByzClockSync(8, _coin_factory),
                             seed=seed, churn=churn)
            monitor = ClockConvergenceMonitor(k=8)
            sim.add_monitor(monitor)
            sim.scramble()
            sim.run(120)
            initial = monitor.beats_to_converge(until_beat=20)
            recovery = monitor.beats_to_converge(from_beat=30)
            assert initial is not None, seed
            assert recovery is not None, seed
            assert recovery <= initial * 3 + 10, (seed, initial, recovery)

    def test_late_join_reconverges(self):
        churn = ((20, "join", (6,)),)
        sim = Simulation(7, 2, lambda i: SSByzClockSync(8, _coin_factory),
                         seed=0, churn=churn)
        monitor = ClockConvergenceMonitor(k=8)
        sim.add_monitor(monitor)
        sim.scramble()
        sim.run(80)
        assert len(monitor.history[0]) == 6   # joiner absent at beat 0
        assert len(monitor.history[20]) == 7  # present from its join beat
        assert monitor.beats_to_converge(from_beat=20) is not None


class TestMobilityLinks:
    def test_registered(self):
        assert "mobility" in LINK_MODELS
        assert "mobility" in LINK_REGISTRY

    def test_positions_deterministic_and_continuous(self):
        a = MobilityLinks(world=100.0, radius=65.0, leg_beats=8)
        b = MobilityLinks(world=100.0, radius=65.0, leg_beats=8)
        a.bind(6, seed=42)
        b.bind(6, seed=42)
        for node in range(6):
            for beat in range(0, 32):
                assert a.position(node, beat) == b.position(node, beat)
        # Within one leg, motion is linear: the midpoint of the leg is
        # the mean of its endpoints.
        x0, y0 = a.position(0, 0)
        x4, y4 = a.position(0, 4)
        x8, y8 = a.position(0, 8)
        assert x4 == pytest.approx((x0 + x8) / 2)
        assert y4 == pytest.approx((y0 + y8) / 2)

    def test_connectivity_is_symmetric(self):
        link = MobilityLinks(world=100.0, radius=50.0, leg_beats=5)
        link.bind(8, seed=7)
        for beat in range(20):
            for a in range(8):
                for b in range(a + 1, 8):
                    assert link.connected(a, b, beat) == link.connected(
                        b, a, beat
                    )

    def test_huge_radius_is_effectively_perfect(self):
        config = _config(link="mobility",
                         link_params=(("radius", 200.0), ("world", 100.0)))
        baseline = _config()
        for seed in range(3):
            assert run_trial(config, seed).history == (
                run_trial(baseline, seed).history
            )

    def test_parameters_validated(self):
        for kwargs in ({"world": 0.0}, {"radius": -1.0}, {"leg_beats": 0}):
            with pytest.raises(ConfigurationError):
                MobilityLinks(**kwargs)


class TestAdaptiveAdversary:
    def test_registered(self):
        assert ADVERSARY_REGISTRY["adaptive"] is AdaptiveEchoAdversary

    def test_strategy_sees_previous_beat_traffic(self):
        observed = []

        class Probe(AdaptiveEchoAdversary):
            def adapt(self, view, previous):
                observed.append(tuple(previous))
                return super().adapt(view, previous)

        sim = Simulation(4, 1, _factory, adversary=Probe(), seed=0)
        sim.run(3)
        # Beat 0 has nothing to adapt to; later beats observe the honest
        # traffic addressed to the coalition in the *previous* beat.
        assert observed[0] == ()
        assert observed[1] != ()
        assert all(
            envelope.sender not in sim.faulty_ids
            and envelope.receiver in sim.faulty_ids
            for envelope in observed[1]
        )

    def test_crafted_traffic_is_deterministic(self):
        def run_once():
            sim = Simulation(
                4, 1, _factory, adversary=AdaptiveEchoAdversary(), seed=5
            )
            sim.run(20)
            return [n.root.clock_value for n in sim.active_nodes().values()]

        assert run_once() == run_once()


class TestCampaignIntegration:
    def test_spec_carries_churn_into_label_and_trial(self):
        spec = ScenarioSpec(n=4, f=1, k=6, coin="local", churn=CHURN,
                            max_beats=60)
        spec.validate()
        assert "churn[5:crash:0," in spec.label
        config = spec.build_config()
        assert config.churn == tuple(CHURN)

    def test_spec_rejects_churn_beyond_budget(self):
        spec = ScenarioSpec(n=4, f=1, k=6, churn=((70, "crash", (0,)),),
                            max_beats=60)
        with pytest.raises(ConfigurationError, match="max_beats"):
            spec.validate()

    def test_grid_broadcasts_churn_axis(self):
        specs = scenario_grid([4], ks=[6], adversaries=["none", "adaptive"],
                              links=["perfect", "mobility"], churn=CHURN)
        assert len(specs) == 4
        assert all(spec.churn == tuple(CHURN) for spec in specs)

    def test_worker_count_invariance(self):
        specs = scenario_grid([4], ks=[6], coin="local", churn=CHURN,
                              max_beats=60, closure_window=4)
        serial = run_campaign(specs, range(3), workers=1)
        parallel = run_campaign(specs, range(3), workers=2)
        assert [e.sweep.results for e in serial] == (
            [e.sweep.results for e in parallel]
        )


class TestCliChurn:
    def test_run_with_churn_converges(self, capsys):
        code = main([
            "run", "--n", "4", "--f", "1", "--k", "10", "--seed", "1",
            "--churn", "20:crash:0", "--churn", "32:recover:0",
            "--beats", "150",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "churn=20:crash:0,32:recover:0" in out
        assert "converged at beat" in out

    @pytest.mark.parametrize("spec", [
        "garbage",            # not BEAT:KIND:IDS
        "20:warp:0",          # unknown kind
        "x:crash:0",          # non-integer beat
        "20:recover:0",       # recover without a crash
        "20:crash:9",         # id out of range
        "500:crash:0",        # beyond --beats
    ])
    def test_run_invalid_churn_exits_2(self, spec, capsys):
        code = main(["run", "--n", "4", "--f", "1", "--churn", spec,
                     "--beats", "100"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_campaign_invalid_churn_exits_2(self, capsys):
        code = main(["campaign", "--n", "4", "--seeds", "1",
                     "--churn", "10:crash:9"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_mobility_and_adaptive_flags(self, capsys):
        code = main([
            "run", "--n", "4", "--f", "1", "--k", "10", "--seed", "0",
            "--mobility", "--adaptive", "--beats", "150",
            "--link-param", "radius=80",
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)  # mobility may legitimately slow convergence
        assert "link=mobility" in out
        assert "adversary=adaptive" in out
