"""Simulation loop semantics: beats, adversary wiring, determinism."""

from __future__ import annotations

import pytest

from repro.adversary.base import Adversary, NullAdversary
from repro.adversary.strategies import ScriptedAdversary
from repro.errors import ConfigurationError, ResilienceError
from repro.net.component import Component
from repro.net.environment import EVENT_DIVERGENT, EVENT_E0, EVENT_E1, Environment
from repro.net.simulator import Simulation
from repro.net.trace import Tracer


class EchoClock(Component):
    """Minimal protocol: broadcast a counter, adopt the max seen."""

    modulus = 1 << 30

    def __init__(self):
        super().__init__()
        self.value = 0

    @property
    def clock_value(self):
        return self.value

    def on_send(self, ctx):
        ctx.broadcast(self.value)

    def on_update(self, ctx):
        values = [e.payload for e in ctx.inbox if isinstance(e.payload, int)]
        self.value = max(values + [self.value]) + 1

    def scramble(self, rng):
        self.value = rng.randrange(1000)


class TestConstruction:
    def test_resilience_enforced(self):
        with pytest.raises(ResilienceError):
            Simulation(3, 1, lambda i: EchoClock())

    def test_adversary_cannot_exceed_f(self):
        class Greedy(Adversary):
            def select_faulty(self, n, f, rng):
                return frozenset(range(f + 1))

        with pytest.raises(ConfigurationError):
            Simulation(4, 1, lambda i: EchoClock(), adversary=Greedy())

    def test_adversary_unknown_ids_rejected(self):
        class Confused(Adversary):
            def select_faulty(self, n, f, rng):
                return frozenset({99})

        with pytest.raises(ConfigurationError):
            Simulation(4, 1, lambda i: EchoClock(), adversary=Confused())

    def test_no_adversary_means_all_honest(self):
        sim = Simulation(4, 1, lambda i: EchoClock())
        assert sim.honest_ids == [0, 1, 2, 3]
        assert sim.faulty_ids == frozenset()

    def test_null_adversary_corrupts_nobody(self):
        sim = Simulation(4, 1, lambda i: EchoClock(), adversary=NullAdversary())
        assert len(sim.nodes) == 4

    def test_default_faulty_selection(self):
        sim = Simulation(7, 2, lambda i: EchoClock(), adversary=Adversary())
        assert sim.faulty_ids == frozenset({5, 6})


class TestBeatLoop:
    def test_same_beat_delivery(self):
        sim = Simulation(4, 1, lambda i: EchoClock())
        sim.run_beat()
        # Everyone broadcast 0, everyone saw 0, adopted max+1 = 1.
        assert all(node.root.value == 1 for node in sim.nodes.values())

    def test_beat_counter_advances(self):
        sim = Simulation(4, 1, lambda i: EchoClock())
        sim.run(5)
        assert sim.beat == 5

    def test_monitors_called_each_beat(self):
        sim = Simulation(4, 1, lambda i: EchoClock())
        beats = []
        sim.add_monitor(lambda s, b: beats.append(b))
        sim.run(3)
        assert beats == [0, 1, 2]

    def test_run_until(self):
        sim = Simulation(4, 1, lambda i: EchoClock())
        hit = sim.run_until(
            lambda s: all(n.root.value >= 3 for n in s.nodes.values()), 10
        )
        assert hit == 2

    def test_run_until_timeout(self):
        sim = Simulation(4, 1, lambda i: EchoClock())
        assert sim.run_until(lambda s: False, 3) is None
        assert sim.beat == 3

    def test_scripted_adversary_messages_delivered(self):
        script = {0: [(3, 0, "root", 500)]}
        sim = Simulation(
            4, 1, lambda i: EchoClock(), adversary=ScriptedAdversary(script)
        )
        sim.run_beat()
        assert sim.nodes[0].root.value == 501  # poisoned by the big value
        assert sim.nodes[1].root.value == 1

    def test_faulty_nodes_have_no_node_objects(self):
        sim = Simulation(4, 1, lambda i: EchoClock(), adversary=Adversary())
        assert set(sim.nodes) == {0, 1, 2}


class TestScrambleValidation:
    """Unknown or faulty node ids in a scramble are configuration errors."""

    def test_unknown_ids_rejected(self):
        sim = Simulation(4, 1, lambda i: EchoClock())
        with pytest.raises(ConfigurationError, match=r"\[99\]"):
            sim.scramble([99])

    def test_faulty_ids_rejected(self):
        sim = Simulation(4, 1, lambda i: EchoClock(), adversary=Adversary())
        (faulty_id,) = sim.faulty_ids
        with pytest.raises(ConfigurationError, match="honest"):
            sim.scramble([faulty_id])

    def test_mixed_subset_rejected_atomically(self):
        """A bad id aborts the whole scramble — no partial fault injection."""
        sim = Simulation(4, 1, lambda i: EchoClock(), seed=5)
        before = {i: node.root.value for i, node in sim.nodes.items()}
        with pytest.raises(ConfigurationError):
            sim.scramble([0, 1, 42])
        after = {i: node.root.value for i, node in sim.nodes.items()}
        assert before == after

    def test_honest_subset_still_scrambles(self):
        sim = Simulation(4, 1, lambda i: EchoClock(), seed=5)
        sim.run(3)
        sim.scramble([0, 2])
        assert sim.beat == 3  # sanity: scramble does not advance beats

    def test_default_scramble_unaffected(self):
        sim = Simulation(4, 1, lambda i: EchoClock(), adversary=Adversary())
        sim.scramble()  # all-correct default never raises


class TestDeterminism:
    def _history(self, seed):
        sim = Simulation(4, 1, lambda i: EchoClock(), seed=seed)
        tracer = Tracer(lambda root: root.value)
        sim.add_monitor(tracer)
        sim.scramble()
        sim.run(6)
        return [record.values for record in tracer.records]

    def test_same_seed_same_run(self):
        assert self._history(42) == self._history(42)

    def test_different_seed_different_run(self):
        assert self._history(42) != self._history(43)


class TestEnvironmentCoins:
    def test_outcome_memoized(self):
        env = Environment(4, seed=0)
        a = env.coin_outcome("p", 3, 0.3, 0.3)
        b = env.coin_outcome("p", 3, 0.3, 0.3)
        assert a is b

    def test_outcome_distribution(self):
        env = Environment(4, seed=1)
        events = [
            env.coin_outcome("p", beat, 0.35, 0.35).event
            for beat in range(600)
        ]
        e0 = events.count(EVENT_E0) / len(events)
        e1 = events.count(EVENT_E1) / len(events)
        div = events.count(EVENT_DIVERGENT) / len(events)
        assert 0.25 < e0 < 0.45
        assert 0.25 < e1 < 0.45
        assert 0.2 < div < 0.4

    def test_agreed_outcomes_common(self):
        env = Environment(5, seed=2)
        for beat in range(50):
            outcome = env.coin_outcome("p", beat, 0.4, 0.4)
            if outcome.agreed:
                assert len(set(outcome.bits.values())) == 1

    def test_divergence_chooser_consulted(self):
        env = Environment(4, seed=3)
        env.divergence_chooser = lambda key, bits: {i: 1 for i in bits}
        for beat in range(200):
            outcome = env.coin_outcome("p", beat, 0.2, 0.2)
            if outcome.event == EVENT_DIVERGENT:
                assert set(outcome.bits.values()) == {1}
                break
        else:
            pytest.fail("no divergent outcome in 200 draws")

    def test_resolved_outcomes_respects_horizon(self):
        env = Environment(4, seed=4)
        env.coin_outcome("p", 5, 0.3, 0.3)
        env.coin_outcome("p", 9, 0.3, 0.3)
        assert set(env.resolved_outcomes(6)) == {("p", 5)}
