"""Error hierarchy and resilience validation."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    DecodingError,
    ProtocolViolationError,
    ReproError,
    ResilienceError,
    RoutingError,
    check_resilience,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            DecodingError,
            ProtocolViolationError,
            ResilienceError,
            RoutingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_resilience_is_configuration(self):
        assert issubclass(ResilienceError, ConfigurationError)


class TestCheckResilience:
    @pytest.mark.parametrize("n,f", [(1, 0), (4, 1), (7, 2), (10, 3), (100, 33)])
    def test_valid(self, n, f):
        check_resilience(n, f)  # must not raise

    @pytest.mark.parametrize("n,f", [(3, 1), (6, 2), (9, 3), (99, 33)])
    def test_bound_violations(self, n, f):
        with pytest.raises(ResilienceError):
            check_resilience(n, f)

    def test_nonsense_sizes(self):
        with pytest.raises(ConfigurationError):
            check_resilience(0, 0)
        with pytest.raises(ConfigurationError):
            check_resilience(4, -1)

    def test_boundary_exactness(self):
        """f < n/3 means n = 3f + 1 is the minimum legal system."""
        check_resilience(7, 2)
        with pytest.raises(ResilienceError):
            check_resilience(6, 2)
