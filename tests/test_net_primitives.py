"""Tests for RNG derivation, envelopes, outboxes and routing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolViolationError
from repro.net.message import Envelope, Outbox
from repro.net.network import Router
from repro.net.rng import SeedSequence, derive_seed


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(1, "node", 3) == derive_seed(1, "node", 3)

    def test_label_sensitivity(self):
        assert derive_seed(1, "node", 3) != derive_seed(1, "node", 4)
        assert derive_seed(1, "node") != derive_seed(1, "eden")
        assert derive_seed(1) != derive_seed(2)

    def test_no_concatenation_collision(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    @given(st.integers(), st.text(max_size=8))
    def test_range(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**64

    def test_streams_independent(self):
        seq = SeedSequence(5)
        a = seq.stream("x")
        b = seq.stream("y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_replay(self):
        seq = SeedSequence(5)
        first = [seq.stream("x").random() for _ in range(3)]
        assert first[0] == first[1] == first[2]

    def test_spawn_namespacing(self):
        seq = SeedSequence(5)
        child = seq.spawn("ns")
        assert child.seed_for("x") != seq.seed_for("x")

    def test_streams_helper(self):
        seq = SeedSequence(1)
        streams = list(seq.streams("node", 4))
        assert len(streams) == 4
        draws = {s.randrange(10**9) for s in streams}
        assert len(draws) == 4


class TestOutbox:
    def test_stamps_sender_and_beat(self):
        outbox = Outbox(sender=3, beat=9)
        outbox.send(1, "root", "hello")
        (envelope,) = outbox.drain()
        assert envelope == Envelope(3, 1, "root", "hello", 9)

    def test_broadcast_reaches_everyone_including_self(self):
        outbox = Outbox(sender=0, beat=0)
        outbox.broadcast([0, 1, 2], "root", 7)
        receivers = [e.receiver for e in outbox.drain()]
        assert receivers == [0, 1, 2]

    def test_drain_clears(self):
        outbox = Outbox(sender=0, beat=0)
        outbox.send(1, "root", 1)
        assert len(outbox) == 1
        outbox.drain()
        assert len(outbox) == 0
        assert outbox.drain() == []


class TestRouter:
    def _router(self, n=4, faulty=(3,)):
        return Router(n, frozenset(faulty))

    def test_routes_by_receiver_and_path(self):
        router = self._router()
        envs = [
            Envelope(0, 1, "root", "a", 0),
            Envelope(0, 1, "root/coin", "b", 0),
            Envelope(0, 2, "root", "c", 0),
        ]
        delivered = router.route(envs, [])
        assert [e.payload for e in delivered[1]["root"]] == ["a"]
        assert [e.payload for e in delivered[1]["root/coin"]] == ["b"]
        assert [e.payload for e in delivered[2]["root"]] == ["c"]

    def test_inboxes_sender_sorted(self):
        router = self._router()
        envs = [
            Envelope(2, 1, "root", "from2", 0),
            Envelope(0, 1, "root", "from0", 0),
        ]
        delivered = router.route(envs, [])
        assert [e.sender for e in delivered[1]["root"]] == [0, 2]

    def test_byzantine_forgery_raises(self):
        router = self._router()
        with pytest.raises(ProtocolViolationError):
            router.route([], [Envelope(0, 1, "root", "forged", 0)])

    def test_byzantine_from_faulty_ok(self):
        router = self._router()
        delivered = router.route([], [Envelope(3, 1, "root", "evil", 0)])
        assert delivered[1]["root"][0].payload == "evil"

    def test_out_of_range_receiver_dropped(self):
        router = self._router()
        delivered = router.route([Envelope(0, 99, "root", "x", 0)], [])
        assert 99 not in delivered

    def test_phantoms_delivered_once(self):
        router = self._router()
        router.inject_phantoms([Envelope(2, 1, "root", "stale", 0)])
        first = router.route([], [])
        assert first[1]["root"][0].payload == "stale"
        second = router.route([], [])
        assert 1 not in second

    def test_stats_accounting(self):
        router = self._router()
        router.route(
            [Envelope(0, 1, "root", "a", 0)],
            [Envelope(3, 1, "root", "b", 0)],
        )
        assert router.stats.total_messages == 2
        assert router.stats.honest_messages == 1
        assert router.stats.byzantine_messages == 1
        assert router.stats.messages_at_beat(0) == 2
        assert router.stats.messages_at_beat(1) == 0

    def test_stats_path_prefix(self):
        router = self._router()
        router.route([Envelope(0, 1, "root/A/coin/slot1", "a", 2)], [])
        assert router.stats.per_path_prefix["root/A"] == 1
