"""Property-based tests for the continuous-time primitives.

The event engine's determinism contract rests on three total claims,
each pinned here across the whole input domain rather than at sampled
points: the event heap's pop order is a *total* order (ascending key,
FIFO on ties) no matter the insertion order; a drifting clock's
local↔global conversions are strictly monotone and inverse for every
legal rate in ``[1 - rho, 1 + rho]``; and every keyed delay draw lands
inside the configured ``[d_min, d_max]`` bounds.

(When hypothesis is not installed, ``tests/conftest.py`` skips
collecting this module entirely.)
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.events import DriftingClock, EventHeap, KeyedDelays

#: Heap keys shaped like the engine's real ones: (time, priority, node).
_keys = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=64),
)


class TestEventHeapProperties:
    @given(st.lists(_keys, max_size=60), st.randoms(use_true_random=False))
    def test_pop_order_total_whatever_the_push_order(self, keys, rng):
        """Ascending-key pop order is invariant under insertion order."""
        heap = EventHeap()
        shuffled = list(enumerate(keys))
        rng.shuffle(shuffled)
        for payload, key in shuffled:
            heap.push(key, payload)
        popped = [heap.pop() for _ in range(len(heap))]
        assert [key for key, _ in popped] == sorted(keys)
        assert not heap

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                 max_size=40)
    )
    def test_equal_keys_pop_in_fifo_push_order(self, priorities):
        """Ties never reorder: payloads with one shared key come out in
        exactly the order they went in, interleaved stably by key."""
        heap = EventHeap()
        for i, priority in enumerate(priorities):
            heap.push(priority, i)
        popped = [heap.pop() for _ in range(len(heap))]
        for key in set(priorities):
            batch = [payload for k, payload in popped if k == key]
            assert batch == sorted(batch)  # push index order preserved

    @given(st.lists(_keys, min_size=1, max_size=40))
    def test_peek_agrees_with_pop(self, keys):
        heap = EventHeap()
        for key in keys:
            heap.push(key)
        assert heap.peek() == heap.pop()


class TestDriftingClockProperties:
    @given(
        st.integers(min_value=0, max_value=2**63),
        st.integers(min_value=0, max_value=128),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    )
    def test_rate_always_in_band(self, seed, node_id, rho):
        clock = DriftingClock(seed, node_id, rho)
        assert 1.0 - rho <= clock.rate <= 1.0 + rho

    @given(
        st.integers(min_value=0, max_value=2**63),
        st.integers(min_value=0, max_value=128),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=1e-9, max_value=1e6, allow_nan=False),
    )
    def test_local_time_strictly_monotone(self, seed, node_id, rho, t, dt):
        """More real time always means more local time — for any rate
        the band admits (rates are positive: rho < 1)."""
        clock = DriftingClock(seed, node_id, rho)
        assert clock.local_time(t + dt) > clock.local_time(t)

    @given(
        st.integers(min_value=0, max_value=2**63),
        st.integers(min_value=0, max_value=128),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_conversions_are_inverse(self, seed, node_id, rho, t):
        clock = DriftingClock(seed, node_id, rho)
        assert clock.global_time(clock.local_time(t)) == (
            pytest.approx(t, rel=1e-12, abs=1e-12)
        )

    @given(
        st.integers(min_value=0, max_value=2**63),
        st.integers(min_value=0, max_value=128),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_pulse_schedule_strictly_increasing(self, seed, node_id, rho,
                                                index):
        clock = DriftingClock(seed, node_id, rho, period=0.25)
        assert clock.pulse_time(index + 1) > clock.pulse_time(index)


class TestKeyedDelayProperties:
    @given(
        st.integers(min_value=0, max_value=2**63),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_draws_always_inside_bounds(
        self, seed, a, b, sender, receiver, beat, seq
    ):
        d_min, d_max = min(a, b), max(a, b)
        delays = KeyedDelays(seed, d_min, d_max)
        value = delays.delay(sender, receiver, beat, seq)
        assert d_min <= value <= d_max

    @given(
        st.integers(min_value=0, max_value=2**63),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_draws_keyed_not_sequential(self, seed, sender, receiver, beat,
                                        seq):
        """The same edge queried twice — or after any other draws —
        yields the same delay: draws are keyed, never stream state."""
        delays = KeyedDelays(seed, 0.1, 0.9)
        first = delays.delay(sender, receiver, beat, seq)
        for _ in range(3):  # interleave unrelated draws
            delays.delay(
                random.randrange(64), random.randrange(64),
                random.randrange(1000), random.randrange(1000),
            )
        assert delays.delay(sender, receiver, beat, seq) == first
