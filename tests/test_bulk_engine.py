"""Differential bit-identity of the bulk engine vs the reference engine.

The bulk engine (:mod:`repro.net.bulk`) is only allowed to exist because
its runs are *bit-identical* to the reference engine: same per-beat clock
values, same convergence beats, same traffic statistics (including link
casualties), same RNG stream consumption — across every registered
protocol, every link model, fault-free and adversarial runs, transient
faults and phantom storms.  This suite is the safety net the tentpole
stands on; it mirrors (and extends) ``tests/test_engines.py``.
"""

from __future__ import annotations

import pytest

from repro.adversary import EquivocatorAdversary, SplitWorldAdversary
from repro.analysis.campaign import ScenarioSpec, iter_campaign
from repro.analysis.convergence import ClockConvergenceMonitor
from repro.analysis.experiments import TrialConfig, run_trial
from repro.coin.feldman_micali import FeldmanMicaliCoin
from repro.coin.oracle import OracleCoin
from repro.core.clock_sync import SSByzClockSync
from repro.core.protocol import PROTOCOLS, resolve_protocol
from repro.faults.network_faults import inject_phantom_storm
from repro.net.bulk import BulkEngine, build_bulk_program, has_bulk_program
from repro.net.engine import ENGINES, resolve_engine
from repro.net.linkmodel import make_link
from repro.net.simulator import Simulation

# Heavyweight differential matrix: deselected by the CI fast lane.
pytestmark = pytest.mark.slow

SEEDS = range(10)

#: Every non-perfect link model, with a parameterization that actually
#: bites at n=4 within the test's beat budget.
LINKS = (
    ("delay", {"max_delay": 2}),
    ("lossy", {"loss": 0.3}),
    ("partition", {"split": 3, "heal": 12}),
    ("partition", {"split": 2, "heal": 6, "period": 10}),
)


def _coin_factory():
    return OracleCoin(p0=0.4, p1=0.4, rounds=2)


def _observe(engine, seed, adversary_factory, *, beats=40, storm_at=None,
             factory=None, k=6, link="perfect", link_params=None,
             share_coin=False, coin="oracle"):
    """Run one scrambled n=4 trial; return every observable."""
    if factory is None:
        if coin == "gvss":
            coin_factory = lambda: FeldmanMicaliCoin(4, 1)
        else:
            coin_factory = _coin_factory
        factory = lambda i: SSByzClockSync(
            k, coin_factory, share_coin=share_coin
        )
    link_model = make_link(link, link_params) if link_params else link
    sim = Simulation(
        4, 1, factory, adversary=adversary_factory(), seed=seed,
        engine=engine, link=link_model,
    )
    monitor = ClockConvergenceMonitor(k)
    sim.add_monitor(monitor)
    sim.scramble()
    if storm_at is None:
        sim.run(beats)
    else:
        sim.run(storm_at)
        sim.scramble()
        inject_phantom_storm(
            sim, ["root", "root/A/A1", "bogus/path"], count=60
        )
        sim.run(beats - storm_at)
    per_beat = [sim.stats.messages_at_beat(b) for b in range(beats)]
    return (
        monitor.history,
        monitor.convergence_beat(),
        sim.stats.total_messages,
        sim.stats.honest_messages,
        sim.stats.byzantine_messages,
        sim.stats.dropped_messages,
        sim.stats.delayed_messages,
        dict(sim.stats.dropped_per_beat),
        per_beat,
        dict(sim.stats.per_path_prefix),
    )


class TestClockSyncDifferential:
    """The paper's tower, vectorized: the hardest program to get right."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_free_runs_identical(self, seed):
        assert _observe("reference", seed, lambda: None) == _observe(
            "bulk", seed, lambda: None
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_adversarial_runs_identical(self, seed):
        ref = _observe("reference", seed, EquivocatorAdversary)
        assert ref == _observe("bulk", seed, EquivocatorAdversary)

    @pytest.mark.parametrize("seed", range(4))
    def test_scramble_and_phantom_storm_identical(self, seed):
        """Mid-run scramble exercises the stale-reload hook; the storm
        exercises the per-receiver dirty merge (incl. unknown paths)."""
        for adversary_factory in (lambda: None, SplitWorldAdversary):
            ref = _observe(
                "reference", seed, adversary_factory, beats=60, storm_at=20
            )
            blk = _observe(
                "bulk", seed, adversary_factory, beats=60, storm_at=20
            )
            assert ref == blk

    @pytest.mark.parametrize("seed", range(6))
    def test_shared_coin_variant_identical(self, seed):
        """Remark 4.1's shared pipeline changes the coin-key set."""
        for adversary_factory in (lambda: None, EquivocatorAdversary):
            ref = _observe(
                "reference", seed, adversary_factory, share_coin=True
            )
            blk = _observe("bulk", seed, adversary_factory, share_coin=True)
            assert ref == blk

    @pytest.mark.parametrize("seed", range(3))
    def test_gvss_coin_falls_back_per_node_identical(self, seed):
        """A message-passing coin has no SoA mapping: fast-path fallback."""
        ref = _observe("reference", seed, lambda: None, coin="gvss")
        assert ref == _observe("bulk", seed, lambda: None, coin="gvss")

    @pytest.mark.parametrize("link,params", LINKS)
    def test_link_models_identical(self, link, params):
        """Partition runs stay vectorized (pure schedule); delay and lossy
        runs take the per-envelope fallback (stateful keyed draws)."""
        for adversary_factory in (lambda: None, EquivocatorAdversary,
                                  SplitWorldAdversary):
            for seed in range(3):
                ref = _observe(
                    "reference", seed, adversary_factory, beats=30,
                    link=link, link_params=params,
                )
                blk = _observe(
                    "bulk", seed, adversary_factory, beats=30,
                    link=link, link_params=params,
                )
                assert ref == blk

    def test_sync_trees_materializes_reference_state(self):
        """flush_full writes back the *entire* tower state, not just the
        clock observable monitors read."""
        def run(engine):
            sim = Simulation(
                4, 1,
                lambda i: SSByzClockSync(6, _coin_factory),
                adversary=EquivocatorAdversary(), seed=5, engine=engine,
            )
            sim.scramble()
            sim.run(25)
            return sim

        ref = run("reference")
        blk = run("bulk")
        assert blk.engine.vectorized
        blk.engine.sync_trees()
        for node_id, node in ref.nodes.items():
            mirror = blk.nodes[node_id].root
            root = node.root
            assert mirror.full_clock == root.full_clock
            assert mirror.save == root.save
            assert mirror._phase == root._phase
            assert mirror._previous == root._previous
            assert mirror.a.clock == root.a.clock
            assert mirror.a._run_a2 == root.a._run_a2
            assert mirror.a.a1.clock == root.a.a1.clock
            assert mirror.a.a2.clock == root.a.a2.clock


class TestAllProtocolsDifferential:
    """Every registered protocol, vectorized or fallback, stays identical."""

    @staticmethod
    def _protocol_factory(name):
        return resolve_protocol(name).factory(
            4, 1, 6, coin_factory=_coin_factory
        )

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_fault_free_seeds_identical(self, name):
        factory = self._protocol_factory(name)
        for seed in SEEDS:
            ref = _observe("reference", seed, lambda: None, factory=factory)
            blk = _observe("bulk", seed, lambda: None, factory=factory)
            assert ref == blk

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_adversarial_seeds_identical(self, name):
        factory = self._protocol_factory(name)
        for seed in range(5):
            ref = _observe(
                "reference", seed, EquivocatorAdversary, factory=factory
            )
            blk = _observe(
                "bulk", seed, EquivocatorAdversary, factory=factory
            )
            assert ref == blk

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("link,params", LINKS[:3])
    def test_link_models_identical(self, name, link, params):
        factory = self._protocol_factory(name)
        for seed in range(3):
            ref = _observe(
                "reference", seed, lambda: None, beats=30, factory=factory,
                link=link, link_params=params,
            )
            blk = _observe(
                "bulk", seed, lambda: None, beats=30, factory=factory,
                link=link, link_params=params,
            )
            assert ref == blk

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_catalog_bulk_execution_matches_engine(self, name):
        """The catalog's vectorized/per-node row is what the engine does
        (oracle coin, perfect links — the catalog's reference regime)."""
        protocol = resolve_protocol(name)
        sim = Simulation(
            4, 1, protocol.factory(4, 1, 6, coin_factory=_coin_factory),
            engine="bulk",
        )
        assert sim.engine.vectorized == (
            protocol.bulk_execution == "vectorized"
        )


class TestEngineModeSelection:
    def test_vectorized_under_perfect_and_partition_only(self):
        factory = lambda i: SSByzClockSync(6, _coin_factory)
        churn = ((5, "crash", (0,)), (9, "recover", (0,)))
        for link, params, churn_spec, expect in (
            ("perfect", None, None, True),
            ("partition", {"split": 1, "heal": 5}, None, True),
            ("delay", {"max_delay": 2}, None, False),
            ("lossy", {"loss": 0.3}, None, False),
            ("mobility", None, None, False),
            # Membership churn forces the per-node fallback even on the
            # otherwise-vectorizable links.
            ("perfect", None, churn, False),
            ("partition", {"split": 1, "heal": 5}, churn, False),
        ):
            link_model = make_link(link, params) if params else link
            sim = Simulation(
                4, 1, factory, engine="bulk", link=link_model,
                churn=churn_spec,
            )
            assert sim.engine.vectorized is expect, (link, params, churn_spec)

    def test_gvss_coin_disables_vectorization(self):
        sim = Simulation(
            4, 1,
            lambda i: SSByzClockSync(6, lambda: FeldmanMicaliCoin(4, 1)),
            engine="bulk",
        )
        assert not sim.engine.vectorized

    def test_unregistered_root_type_builds_no_program(self):
        from repro.baselines.det_clock_sync import DeterministicClockSync

        sim = Simulation(
            4, 1, lambda i: DeterministicClockSync(4, 1, 6), engine="bulk"
        )
        assert sim.engine.vectorized is False
        assert build_bulk_program(sim) is None
        assert not has_bulk_program(DeterministicClockSync)
        assert has_bulk_program(SSByzClockSync)

    def test_registry_and_single_use(self):
        assert "bulk" in ENGINES
        engine = resolve_engine("bulk")
        assert isinstance(engine, BulkEngine)
        assert engine.description
        factory = lambda i: SSByzClockSync(6, _coin_factory)
        instance = BulkEngine()
        Simulation(4, 1, factory, engine=instance)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Simulation(4, 1, factory, engine=instance)


class TestCampaignDispatch:
    def test_run_trial_identical_across_engines(self):
        def config(engine):
            return TrialConfig(
                n=4, f=1, k=6,
                protocol_factory=lambda i: SSByzClockSync(6, _coin_factory),
                max_beats=120,
                engine=engine,
            )

        for seed in range(5):
            assert run_trial(config("reference"), seed) == run_trial(
                config("bulk"), seed
            )

    def test_campaign_engine_axis_identical(self):
        def sweep(engine):
            specs = [
                ScenarioSpec(n=4, f=1, k=6, engine=engine, max_beats=80),
                ScenarioSpec(
                    n=4, f=1, k=6, engine=engine, adversary="equivocator",
                    max_beats=80,
                ),
                ScenarioSpec(
                    n=4, f=1, k=6, engine=engine, protocol="dolev-welch",
                    max_beats=80,
                ),
            ]
            # SweepResult embeds the TrialConfig (whose engine field is
            # the axis under test); compare the per-seed trial outcomes.
            return [
                entry.sweep.results
                for entry in iter_campaign(specs, range(3), workers=1)
            ]

        assert sweep("fast") == sweep("bulk")
