"""Tracer, trace formatting, and the shared JSONL on-disk format."""

from __future__ import annotations

import json

import pytest

from repro.coin.oracle import OracleCoin
from repro.core.clock2 import SSByz2Clock
from repro.net.simulator import Simulation
from repro.net.trace import (
    BeatRecord,
    Tracer,
    format_clock_row,
    records_from_jsonl,
    records_to_jsonl,
)


class TestTracer:
    def _sim_with_tracer(self, printer=None):
        sim = Simulation(
            4, 1, lambda i: SSByz2Clock(OracleCoin(rounds=2)), seed=1
        )
        tracer = Tracer(lambda root: root.clock, printer=printer)
        sim.add_monitor(tracer)
        return sim, tracer

    def test_records_every_beat(self):
        sim, tracer = self._sim_with_tracer()
        sim.run(5)
        assert [r.beat for r in tracer.records] == [0, 1, 2, 3, 4]

    def test_values_per_honest_node(self):
        sim, tracer = self._sim_with_tracer()
        sim.run(1)
        assert sorted(tracer.records[0].values) == [0, 1, 2, 3]

    def test_series_extraction(self):
        sim, tracer = self._sim_with_tracer()
        sim.run(6)
        series = tracer.series(0)
        assert len(series) == 6
        assert all(v in (0, 1, None) for v in series)

    def test_printer_called(self):
        lines = []
        sim, tracer = self._sim_with_tracer(printer=lines.append)
        sim.run(3)
        assert len(lines) == 3
        assert all(line.startswith("beat") for line in lines)


class TestJsonl:
    def test_record_round_trip(self):
        record = BeatRecord(7, {0: 3, 1: None, 2: 0})
        line = record.to_jsonl()
        assert "\n" not in line
        assert BeatRecord.from_jsonl(line) == record

    def test_node_ids_come_back_as_ints(self):
        loaded = BeatRecord.from_jsonl('{"beat":0,"values":{"2":5,"0":1}}')
        assert sorted(loaded.values) == [0, 2]
        assert loaded.values[2] == 5

    def test_equal_records_serialize_to_equal_bytes(self):
        """Key order must not leak into the bytes (the differential
        harness compares serialized traces directly)."""
        a = BeatRecord(1, {0: 1, 1: 2})
        b = BeatRecord(1, {1: 2, 0: 1})
        assert a.to_jsonl() == b.to_jsonl()

    def test_tracer_to_jsonl_round_trips(self):
        sim = Simulation(
            4, 1, lambda i: SSByz2Clock(OracleCoin(rounds=2)), seed=1
        )
        tracer = Tracer(lambda root: root.clock)
        sim.add_monitor(tracer)
        sim.run(6)
        text = tracer.to_jsonl()
        assert text.endswith("\n") and len(text.splitlines()) == 6
        assert records_from_jsonl(text) == list(tracer.records)
        assert records_to_jsonl(records_from_jsonl(text)) == text

    def test_blank_lines_ignored_on_load(self):
        text = '{"beat":0,"values":{"0":1}}\n\n{"beat":1,"values":{"0":2}}\n'
        assert [r.beat for r in records_from_jsonl(text)] == [0, 1]

    def test_lines_are_plain_json(self):
        """Any JSONL tooling can consume a trace without this library."""
        line = BeatRecord(3, {0: None, 1: 4}).to_jsonl()
        assert json.loads(line) == {"beat": 3, "values": {"0": None, "1": 4}}

    def test_malformed_line_raises(self):
        with pytest.raises((json.JSONDecodeError, KeyError)):
            BeatRecord.from_jsonl("not json at all")


class TestFormatting:
    def test_bottom_rendered_as_symbol(self):
        record = BeatRecord(4, {0: None, 1: 7})
        row = format_clock_row(record, frozenset())
        assert "⊥" in row
        assert "7" in row
        assert "beat    4" in row

    def test_faulty_marked(self):
        record = BeatRecord(0, {0: 1})
        row = format_clock_row(record, frozenset({3}))
        assert "☠" in row
