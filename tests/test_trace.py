"""Tracer and trace formatting."""

from __future__ import annotations

from repro.coin.oracle import OracleCoin
from repro.core.clock2 import SSByz2Clock
from repro.net.simulator import Simulation
from repro.net.trace import BeatRecord, Tracer, format_clock_row


class TestTracer:
    def _sim_with_tracer(self, printer=None):
        sim = Simulation(
            4, 1, lambda i: SSByz2Clock(OracleCoin(rounds=2)), seed=1
        )
        tracer = Tracer(lambda root: root.clock, printer=printer)
        sim.add_monitor(tracer)
        return sim, tracer

    def test_records_every_beat(self):
        sim, tracer = self._sim_with_tracer()
        sim.run(5)
        assert [r.beat for r in tracer.records] == [0, 1, 2, 3, 4]

    def test_values_per_honest_node(self):
        sim, tracer = self._sim_with_tracer()
        sim.run(1)
        assert sorted(tracer.records[0].values) == [0, 1, 2, 3]

    def test_series_extraction(self):
        sim, tracer = self._sim_with_tracer()
        sim.run(6)
        series = tracer.series(0)
        assert len(series) == 6
        assert all(v in (0, 1, None) for v in series)

    def test_printer_called(self):
        lines = []
        sim, tracer = self._sim_with_tracer(printer=lines.append)
        sim.run(3)
        assert len(lines) == 3
        assert all(line.startswith("beat") for line in lines)


class TestFormatting:
    def test_bottom_rendered_as_symbol(self):
        record = BeatRecord(4, {0: None, 1: 7})
        row = format_clock_row(record, frozenset())
        assert "⊥" in row
        assert "7" in row
        assert "beat    4" in row

    def test_faulty_marked(self):
        record = BeatRecord(0, {0: 1})
        row = format_clock_row(record, frozenset({3}))
        assert "☠" in row
