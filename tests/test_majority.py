"""Counting helpers and Observation 3.1 as a tested property."""

from __future__ import annotations

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.core.majority import (
    BOTTOM,
    count_values,
    first_payload_per_sender,
    most_frequent,
    value_with_count_at_least,
)
from repro.net.message import Envelope


class TestFirstPerSender:
    def test_dedupes_keeping_first(self):
        inbox = [
            Envelope(1, 0, "root", "a", 0),
            Envelope(1, 0, "root", "b", 0),
            Envelope(2, 0, "root", "c", 0),
        ]
        assert first_payload_per_sender(inbox) == {1: "a", 2: "c"}

    def test_empty(self):
        assert first_payload_per_sender([]) == {}


class TestCounting:
    def test_counts_hashables(self):
        counter = count_values([1, 1, None, "x"])
        assert counter[1] == 2
        assert counter[None] == 1

    def test_drops_unhashable_byzantine_junk(self):
        counter = count_values([1, [2, 3], {"a": 1}, 1])
        assert counter == Counter({1: 2})

    def test_most_frequent_empty(self):
        assert most_frequent(Counter()) == (BOTTOM, 0)

    def test_most_frequent_basic(self):
        assert most_frequent(Counter({5: 3, 7: 1})) == (5, 3)

    def test_tie_break_deterministic(self):
        a = most_frequent(Counter({0: 2, 1: 2}))
        b = most_frequent(Counter({1: 2, 0: 2}))
        assert a == b

    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=20))
    def test_most_frequent_is_argmax(self, values):
        counter = count_values(values)
        winner, count = most_frequent(counter)
        if values:
            assert count == max(counter.values())
            assert counter[winner] == count


class TestThresholdValue:
    def test_finds_threshold_value(self):
        assert value_with_count_at_least([1, 1, 1, 2], 3) == 1

    def test_returns_bottom_below_threshold(self):
        assert value_with_count_at_least([1, 1, 2, 2], 3) is BOTTOM

    def test_empty(self):
        assert value_with_count_at_least([], 1) is BOTTOM


class TestObservation31:
    """Observation 3.1: if two length-n vectors differ in at most f
    entries (n > 3f) and each contains n-f copies of some value, the
    values coincide."""

    @given(st.data())
    def test_observation_3_1(self, data):
        f = data.draw(st.integers(min_value=0, max_value=3))
        n = data.draw(st.integers(min_value=3 * f + 1, max_value=3 * f + 4))
        base = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=2), min_size=n, max_size=n
            )
        )
        vector_a = list(base)
        vector_b = list(base)
        flips = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=2),
                ),
                max_size=f,
            )
        )
        for index, value in flips:
            vector_b[index] = value

        value_a = value_with_count_at_least(vector_a, n - f)
        value_b = value_with_count_at_least(vector_b, n - f)
        if value_a is not BOTTOM and value_b is not BOTTOM:
            assert value_a == value_b

    def test_paper_example_shape(self):
        # n=4, f=1: A has 3 copies of 0; B differs in one entry and has 3
        # copies of some value — necessarily 0 as well.
        vector_a = [0, 0, 0, 1]
        vector_b = [0, 0, 0, 2]  # differs in at most f = 1 entries
        assert value_with_count_at_least(vector_a, 3) == 0
        assert value_with_count_at_least(vector_b, 3) == 0
