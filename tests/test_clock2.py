"""ss-Byz-2-Clock (Fig. 2): Lemmas 2-5 and Theorem 2 as executable tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary.anti_coin import AntiCoinClock2Adversary
from repro.adversary.strategies import (
    CrashAdversary,
    EquivocatorAdversary,
    RandomNoiseAdversary,
    ScriptedAdversary,
    SplitWorldAdversary,
)
from repro.analysis.convergence import ClockConvergenceMonitor
from repro.coin.local import LocalCoin
from repro.coin.oracle import OracleCoin
from repro.core.clock2 import SSByz2Clock
from repro.core.majority import BOTTOM
from repro.net.simulator import Simulation

COIN = OracleCoin(p0=0.35, p1=0.35, rounds=3)


def clock2_sim(n=4, f=1, adversary=None, seed=0, coin=None):
    algorithm = coin or COIN
    sim = Simulation(
        n, f, lambda i: SSByz2Clock(algorithm), adversary=adversary, seed=seed
    )
    monitor = ClockConvergenceMonitor(k=2)
    sim.add_monitor(monitor)
    return sim, monitor


def set_clocks(sim, values):
    for node_id, value in zip(sim.honest_ids, values):
        sim.nodes[node_id].root.clock = value


class TestLemma2:
    """If all correct clocks equal v at a beat's start, they all equal
    1 - v at its end — under any adversary."""

    @pytest.mark.parametrize("v", [0, 1])
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: None,
            CrashAdversary,
            RandomNoiseAdversary,
            EquivocatorAdversary,
            SplitWorldAdversary,
        ],
    )
    def test_synched_state_flips(self, v, adversary_factory):
        sim, _ = clock2_sim(n=7, f=2, adversary=adversary_factory(), seed=3)
        set_clocks(sim, [v] * len(sim.honest_ids))
        sim.run_beat()
        assert all(node.root.clock == 1 - v for node in sim.nodes.values())

    def test_closure_holds_forever(self):
        sim, _ = clock2_sim(n=4, f=1, adversary=EquivocatorAdversary(), seed=4)
        set_clocks(sim, [0] * 3)
        expected = 0
        for _ in range(30):
            sim.run_beat()
            expected = 1 - expected
            assert {n.root.clock for n in sim.nodes.values()} == {expected}


class TestLemma3:
    """After a safe beat, correct clocks lie in {v, ⊥} for a single v."""

    def test_post_beat_values_within_v_bottom(self):
        # With p0 + p1 = 1, every beat is safe once the pipeline flushed.
        always_safe = OracleCoin(p0=0.5, p1=0.5, rounds=2)
        sim, _ = clock2_sim(
            n=7, f=2, adversary=SplitWorldAdversary(), seed=5, coin=always_safe
        )
        sim.scramble()
        sim.run(always_safe.rounds)  # coin flush
        for _ in range(20):
            sim.run_beat()
            non_bottom = {
                n.root.clock
                for n in sim.nodes.values()
                if n.root.clock is not BOTTOM
            }
            assert len(non_bottom) <= 1


class TestLemma5AndTheorem2:
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: None,
            CrashAdversary,
            RandomNoiseAdversary,
            EquivocatorAdversary,
            SplitWorldAdversary,
        ],
    )
    def test_converges_from_scramble(self, adversary_factory):
        sim, monitor = clock2_sim(n=7, f=2, adversary=adversary_factory(), seed=6)
        sim.scramble()
        sim.run(80)
        beat = monitor.convergence_beat()
        assert beat is not None, "2-clock did not converge in 80 beats"

    def test_expected_constant_latency(self):
        """Theorem 2: expected convergence is a small constant — across
        seeds the mean must stay far below anything n-dependent."""
        latencies = []
        for seed in range(20):
            sim, monitor = clock2_sim(n=7, f=2, seed=seed)
            sim.scramble()
            sim.run(100)
            beat = monitor.convergence_beat()
            assert beat is not None
            latencies.append(beat)
        assert sum(latencies) / len(latencies) < 15

    def test_anti_coin_adversary_delays_but_loses(self):
        """The strongest model-legal attack (rushing + current-beat coin)
        still yields expected-constant convergence (Lemma 4)."""
        latencies = []
        for seed in range(12):
            adversary = AntiCoinClock2Adversary(COIN)
            sim, monitor = clock2_sim(n=7, f=2, adversary=adversary, seed=seed)
            sim.scramble()
            sim.run(150)
            beat = monitor.convergence_beat()
            assert beat is not None, f"seed {seed}: attack stalled convergence"
            latencies.append(beat)
        assert sum(latencies) / len(latencies) < 40

    def test_geometric_tail(self):
        """Theorem 2's discussion: P(not converged by beat b) drops
        exponentially; the latency histogram must be front-loaded."""
        latencies = []
        for seed in range(40):
            sim, monitor = clock2_sim(n=4, f=1, seed=seed)
            sim.scramble()
            sim.run(60)
            beat = monitor.convergence_beat()
            assert beat is not None
            latencies.append(beat)
        early = sum(1 for b in latencies if b <= 10)
        late = sum(1 for b in latencies if b > 30)
        assert early > len(latencies) * 0.5
        assert late < len(latencies) * 0.1


class TestSelfStabilization:
    @given(st.lists(st.sampled_from([0, 1, None]), min_size=5, max_size=5))
    def test_converges_from_arbitrary_clock_state(self, start):
        sim, monitor = clock2_sim(n=7, f=2, seed=11)
        set_clocks(sim, start + [0, 0][: 5 - len(start)])
        sim.run(80)
        assert monitor.convergence_beat() is not None

    def test_reconverges_after_midrun_scramble(self):
        sim, monitor = clock2_sim(n=4, f=1, seed=12)
        sim.scramble()
        sim.run(40)
        assert monitor.convergence_beat() is not None
        sim.scramble()
        sim.run(60)
        assert monitor.convergence_beat(from_beat=40) is not None


class TestLocalCoinAblation:
    def test_local_coin_slower_than_common_coin(self):
        """Replacing the common coin with private coins reproduces the
        exponential-flavour slowdown of the pre-common-coin algorithms."""
        common, local = [], []
        for seed in range(10):
            sim, monitor = clock2_sim(n=10, f=3, seed=seed)
            sim.scramble()
            sim.run(150)
            beat = monitor.convergence_beat()
            if beat is not None:
                common.append(beat)

            sim, monitor = clock2_sim(n=10, f=3, seed=seed, coin=LocalCoin())
            sim.scramble()
            sim.run(150)
            beat = monitor.convergence_beat()
            local.append(beat if beat is not None else 150)
        assert common, "common-coin runs must converge"
        assert sum(common) / len(common) < sum(local) / len(local)


class TestRobustness:
    def test_byzantine_junk_values_never_adopted(self):
        script = {
            beat: [(3, r, "root", 7) for r in range(4)] for beat in range(20)
        }
        sim, _ = clock2_sim(n=4, f=1, adversary=ScriptedAdversary(script), seed=13)
        sim.run(20)
        for node in sim.nodes.values():
            assert node.root.clock in (0, 1, BOTTOM)

    def test_clock_value_property(self):
        sim, _ = clock2_sim()
        node = sim.nodes[0]
        assert node.root.clock_value == node.root.clock
        assert node.root.modulus == 2

    def test_scramble_domain(self):
        import random

        component = SSByz2Clock(COIN)
        rng = random.Random(5)
        seen = set()
        for _ in range(30):
            component.scramble(rng)
            seen.add(component.clock)
        assert seen <= {0, 1, BOTTOM}
        assert len(seen) == 3
