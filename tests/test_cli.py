"""CLI behaviour: every command runs, is deterministic, and exits cleanly."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.cli import ADVERSARIES, PROTOCOL_REGISTRY, main


class TestDemo:
    def test_demo_converges(self, capsys):
        code = main(["demo", "--n", "4", "--f", "1", "--k", "10", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged at beat" in out

    def test_demo_with_adversary(self, capsys):
        code = main(
            [
                "demo",
                "--n", "4", "--f", "1", "--k", "8",
                "--adversary", "equivocator",
                "--seed", "2",
            ]
        )
        assert code == 0

    def test_demo_gvss_coin(self, capsys):
        code = main(
            ["demo", "--n", "4", "--f", "1", "--k", "8", "--coin", "gvss",
             "--seed", "3", "--beats", "80"]
        )
        assert code == 0

    def test_demo_nonconvergence_exit_code(self, capsys):
        # The local coin at a hard size within a tiny budget: must report
        # failure through the exit code rather than pretending.
        code = main(
            ["demo", "--n", "10", "--f", "3", "--k", "8", "--coin", "local",
             "--seed", "1", "--beats", "10"]
        )
        assert code == 1
        assert "did not converge" in capsys.readouterr().out

    def test_demo_deterministic(self, capsys):
        main(["demo", "--n", "4", "--f", "1", "--k", "10", "--seed", "7"])
        first = capsys.readouterr().out
        main(["demo", "--n", "4", "--f", "1", "--k", "10", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second


class TestLinkFlags:
    def test_run_alias_with_lossy_link(self, capsys):
        code = main(
            ["run", "--n", "4", "--f", "1", "--k", "8", "--seed", "1",
             "--link", "lossy", "--link-param", "loss=0.1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "link=lossy" in out
        assert "dropped" in out

    def test_run_perfect_link_matches_demo(self, capsys):
        main(["demo", "--n", "4", "--f", "1", "--k", "10", "--seed", "7"])
        demo = capsys.readouterr().out
        main(["run", "--n", "4", "--f", "1", "--k", "10", "--seed", "7",
              "--link", "perfect"])
        run = capsys.readouterr().out
        assert demo == run

    def test_links_listing(self, capsys):
        code = main(["links"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("perfect", "delay", "lossy", "partition"):
            assert name in out

    def test_bad_link_param_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--link", "lossy", "--link-param", "loss"])
        with pytest.raises(SystemExit):
            main(["run", "--link", "lossy", "--link-param", "loss=high"])

    def test_out_of_range_link_param_clean_exit(self, capsys):
        """A well-formed but invalid value exits 2, not a traceback."""
        code = main(
            ["run", "--n", "4", "--f", "1", "--k", "8",
             "--link", "lossy", "--link-param", "loss=2.0"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "loss" in err

    def test_nonconvergence_message_keeps_separator(self, capsys):
        code = main(
            ["run", "--n", "4", "--f", "1", "--k", "8", "--seed", "1",
             "--beats", "6", "--link", "lossy", "--link-param", "loss=0.4"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "beats, " in out and "dropped" in out

    def test_campaign_params_routed_per_model(self, capsys):
        """One --link-param pool parameterizes every model on the axis."""
        code = main(
            ["campaign", "--n", "4", "--k", "6", "--seeds", "1",
             "--beats", "40", "--workers", "1",
             "--link", "delay", "lossy",
             "--link-param", "max_delay=1", "--link-param", "loss=0.05"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delay(d=1)" in out and "lossy(p=0.05)" in out

    def test_campaign_link_axis(self, capsys):
        code = main(
            ["campaign", "--n", "4", "--k", "6", "--seeds", "1",
             "--beats", "60", "--workers", "1",
             "--link", "perfect", "lossy", "--link-param", "loss=0.05"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign: 2 scenarios x 1 seeds" in out
        assert "lossy(p=0.05)" in out

    def test_campaign_bad_link_params_exit_code(self, capsys):
        code = main(
            ["campaign", "--n", "4", "--seeds", "1", "--workers", "1",
             "--link", "delay", "--link-param", "warp=2"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "delay" in err

    def test_campaign_timing_axis(self, capsys):
        code = main(
            ["campaign", "--n", "4", "--k", "6", "--seeds", "1",
             "--beats", "30", "--workers", "1",
             "--timing", "0.005:0:0.1:1", "0:0:0:1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign: 2 scenarios x 1 seeds" in out
        assert "timing[rho=0.005,d=0.0-0.1,period=1.0]" in out
        assert "timing[rho=0.0,d=0.0-0.0,period=1.0]" in out

    def test_campaign_malformed_timing_exit_code(self, capsys):
        code = main(
            ["campaign", "--n", "4", "--seeds", "1", "--workers", "1",
             "--timing", "0.005:0"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "RHO:DMIN:DMAX:PERIOD" in err

    def test_campaign_timing_rejects_link_axis(self, capsys):
        code = main(
            ["campaign", "--n", "4", "--seeds", "1", "--workers", "1",
             "--timing", "0.005:0:0.1:1", "--link", "delay"]
        )
        err = capsys.readouterr().err
        assert code == 2


class TestProtocolFlags:
    def test_protocols_listing(self, capsys):
        from repro.analysis.campaign import PROTOCOL_REGISTRY

        code = main(["protocols"])
        out = capsys.readouterr().out
        assert code == 0
        for name in PROTOCOL_REGISTRY:
            assert name in out
        assert "(default)" in out

    @pytest.mark.parametrize(
        "protocol", ["deterministic", "phase-king", "turpin-coan"]
    )
    def test_run_protocol_converges(self, protocol, capsys):
        code = main(
            ["run", "--n", "4", "--f", "1", "--k", "8", "--seed", "1",
             "--protocol", protocol]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged at beat" in out
        assert protocol in out

    def test_run_default_protocol_unchanged(self, capsys):
        main(["run", "--n", "4", "--f", "1", "--k", "10", "--seed", "7"])
        implicit = capsys.readouterr().out
        main(["run", "--n", "4", "--f", "1", "--k", "10", "--seed", "7",
              "--protocol", "clock-sync"])
        explicit = capsys.readouterr().out
        assert implicit == explicit

    def test_unknown_protocol_clean_exit_2(self, capsys):
        """Registry error path: argparse rejects the name with exit 2."""
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--protocol", "quantum"])
        assert excinfo.value.code == 2
        assert "quantum" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--protocol", "quantum"])
        assert excinfo.value.code == 2

    def test_runtime_protocol_flag(self, capsys):
        code = main(
            ["runtime", "--n", "4", "--f", "1", "--k", "6",
             "--protocol", "phase-king", "--seed", "0", "--beats", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "live phase-king" in out
        assert "converged at beat" in out

    def test_campaign_protocol_axis(self, capsys):
        code = main(
            ["campaign", "--n", "4", "--k", "6", "--seeds", "1",
             "--beats", "150", "--workers", "1",
             "--protocol", "clock-sync", "turpin-coan"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign: 2 scenarios x 1 seeds" in out
        assert "turpin-coan" in out


class TestEngineFlags:
    def test_engines_listing_prints_descriptions(self, capsys):
        from repro.net.engine import ENGINES

        code = main(["engines"])
        out = capsys.readouterr().out
        assert code == 0
        assert set(ENGINES) == {"reference", "fast", "bulk"}
        for name, engine_cls in ENGINES.items():
            assert name in out
            assert engine_cls.description in out
        assert "(default)" in out

    def test_run_engine_flag_bit_identical_to_default(self, capsys):
        main(["run", "--n", "4", "--f", "1", "--k", "10", "--seed", "7"])
        default = capsys.readouterr().out
        code = main(["run", "--n", "4", "--f", "1", "--k", "10",
                     "--seed", "7", "--engine", "bulk"])
        bulk = capsys.readouterr().out
        assert code == 0
        assert default == bulk

    def test_run_reference_engine_selectable(self, capsys):
        code = main(["run", "--n", "4", "--f", "1", "--k", "10",
                     "--seed", "7", "--engine", "reference"])
        assert code == 0
        assert "converged at beat" in capsys.readouterr().out

    def test_runtime_engine_flag_validated(self, capsys):
        code = main(
            ["runtime", "--n", "4", "--f", "1", "--k", "6",
             "--seed", "0", "--beats", "30", "--engine", "bulk"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged at beat" in out

    @pytest.mark.parametrize("command", ["run", "runtime", "campaign"])
    def test_unknown_engine_exits_2(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--engine", "warp"])
        assert excinfo.value.code == 2
        assert "warp" in capsys.readouterr().err


class TestOtherCommands:
    def test_table1(self, capsys):
        code = main(
            ["table1", "--n", "4", "--f", "1", "--k", "4", "--seeds", "2",
             "--beats", "300"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "current paper" in out
        assert "deterministic" in out

    def test_coin_stream(self, capsys):
        code = main(["coin", "--n", "4", "--f", "1", "--beats", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement: 10/10" in out

    def test_coin_stream_under_mixed_dealing_reports_divergence(self, capsys):
        code = main(
            ["coin", "--n", "4", "--f", "1", "--beats", "10",
             "--adversary", "mixed-dealing", "--seed", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "divergent" in out

    def test_adversaries_listing(self, capsys):
        code = main(["adversaries"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ADVERSARIES:
            assert name in out

    def test_engines_listing(self, capsys):
        code = main(["engines"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fast" in out and "reference" in out
        assert "(default)" in out

    def test_transports_listing(self, capsys):
        code = main(["transports"])
        out = capsys.readouterr().out
        assert code == 0
        assert "local" in out and "tcp" in out
        assert "(default)" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRuntimeCommand:
    def test_runtime_converges_and_writes_trace(self, tmp_path, capsys):
        from repro.net.trace import records_from_jsonl

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "runtime",
                "--n", "4", "--f", "1", "--k", "6",
                "--adversary", "equivocator",
                "--seed", "0", "--beats", "30",
                "--trace", str(trace_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged at beat" in out
        assert "transport=local" in out
        records = records_from_jsonl(trace_path.read_text(encoding="utf-8"))
        assert [r.beat for r in records] == list(range(30))

    def test_runtime_deterministic(self, capsys):
        def run_once():
            code = main(
                ["runtime", "--n", "4", "--f", "1", "--k", "6",
                 "--seed", "3", "--beats", "12", "--show", "12"]
            )
            out = capsys.readouterr().out
            assert code in (0, 1)
            # Strip the wall-clock rate tail; beats are what determinism pins.
            return [line for line in out.splitlines() if line.startswith("  beat")]

        assert run_once() == run_once()

    def test_runtime_tcp_transport(self, capsys):
        code = main(
            ["runtime", "--n", "4", "--f", "1", "--k", "6",
             "--seed", "0", "--beats", "25", "--transport", "tcp"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "transport=tcp" in out

    def test_runtime_bad_sizes_clean_exit(self, capsys):
        code = main(["runtime", "--n", "3", "--f", "1", "--beats", "5"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_runtime_nonconvergence_exit_code(self, capsys):
        # Two beats cannot witness convergence-plus-closure from scramble.
        code = main(
            ["runtime", "--n", "4", "--f", "1", "--k", "6",
             "--seed", "0", "--beats", "2"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "did not converge" in out

    def test_runtime_codec_flag_changes_bytes_not_beats(self, capsys):
        def beats(codec):
            code = main(
                ["runtime", "--n", "4", "--f", "1", "--k", "6",
                 "--seed", "0", "--beats", "25", "--codec", codec,
                 "--show", "12"]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert f"codec={codec}" in out
            return [line for line in out.splitlines()
                    if line.startswith("  beat")]

        assert beats("binary") == beats("json")

    def test_runtime_unknown_codec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["runtime", "--n", "4", "--f", "1", "--codec", "morse"])
        assert excinfo.value.code == 2
        assert "--codec" in capsys.readouterr().err


class TestCodecsCommand:
    def test_codecs_lists_registry_with_default(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        assert "json" in out
        assert "binary" in out
        assert "(default)" in out


class TestClusterCommand:
    def test_cluster_run_smoke_spec(self, tmp_path, capsys):
        from repro.net.trace import records_from_jsonl

        code = main(
            ["cluster", "run", "examples/cluster_smoke.py",
             "--trace-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cluster smoke-n4:" in out
        assert "converged at beat" in out
        trace = (tmp_path / "smoke-n4.jsonl").read_text(encoding="utf-8")
        assert [r.beat for r in records_from_jsonl(trace)] == list(range(12))

    def test_cluster_codec_override_and_only_filter(self, capsys):
        code = main(
            ["cluster", "run", "examples/cluster_smoke.py",
             "--only", "smoke-n4", "--codec", "json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "codec=json" in out

    def test_cluster_unknown_experiment_exits_2(self, capsys):
        code = main(
            ["cluster", "run", "examples/cluster_smoke.py",
             "--only", "no-such-experiment"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_cluster_bad_spec_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("experiments = []\n", encoding="utf-8")
        code = main(["cluster", "run", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_cluster_unknown_codec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cluster", "run", "examples/cluster_smoke.py",
                  "--codec", "morse"])
        assert excinfo.value.code == 2
        assert "--codec" in capsys.readouterr().err


class TestBenchCommand:
    """`python -m repro bench` smoke; the full contract is tests/test_bench.py."""

    def test_bench_list_names_every_registration(self, capsys):
        from repro.bench import all_benchmarks

        code = main(["bench", "list"])
        out = capsys.readouterr().out
        assert code == 0
        for benchmark in all_benchmarks():
            assert benchmark.name in out
        assert "16 benchmarks" in out

    def test_bench_list_tier_selection(self, capsys):
        code = main(["bench", "list", "--tier", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "engines" in out and "link_conditions" in out
        assert "table1" not in out

    def test_bench_run_smoke_single_benchmark(self, tmp_path, capsys):
        summary_path = tmp_path / "BENCH_summary.json"
        code = main(
            ["bench", "run", "--tier", "smoke", "--only", "engines",
             "--results-dir", str(tmp_path), "--summary", str(summary_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engines" in out and "wrote" in out
        assert summary_path.exists()
        assert (tmp_path / "engines.smoke.json").exists()

    def test_bench_run_profile_writes_prof(self, tmp_path, capsys):
        summary_path = tmp_path / "BENCH_summary.json"
        code = main(
            ["bench", "run", "--tier", "smoke", "--only", "engines",
             "--profile",
             "--results-dir", str(tmp_path), "--summary", str(summary_path)]
        )
        assert code == 0
        assert (tmp_path / "engines.smoke.prof").exists()

    def test_bench_gate_against_checked_in_artifacts(self, tmp_path, capsys):
        """A fresh smoke run of the deterministic sweep gates cleanly
        against the checked-in baselines (the CI contract)."""
        summary_path = tmp_path / "BENCH_summary.json"
        assert main(
            ["bench", "run", "--tier", "smoke", "--only", "link_conditions",
             "--results-dir", str(tmp_path), "--summary", str(summary_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["bench", "gate", "--summary", str(summary_path),
             "--baseline", "benchmarks/baselines.json"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "-> ok" in out


class TestTraceCommand:
    """`repro trace` — the differential discipline as a shell command."""

    def _write_pair(self, tmp_path, protocol, capsys, beats=10):
        sim = tmp_path / f"{protocol}.sim.jsonl"
        live = tmp_path / f"{protocol}.rt.jsonl"
        code = main(
            ["run", "--n", "4", "--f", "1", "--k", "6",
             "--protocol", protocol, "--seed", "0",
             "--beats", str(beats), "--no-early-stop",
             "--trace", str(sim)]
        )
        assert code in (0, 1)
        code = main(
            ["runtime", "--n", "4", "--f", "1", "--k", "6",
             "--protocol", protocol, "--seed", "0",
             "--beats", str(beats), "--trace", str(live)]
        )
        assert code in (0, 1)
        capsys.readouterr()
        return sim, live

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_REGISTRY))
    def test_diff_simulator_vs_runtime_matches_per_protocol(
        self, protocol, tmp_path, capsys
    ):
        sim, live = self._write_pair(tmp_path, protocol, capsys)
        code = main(["trace", "diff", str(sim), str(live)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "traces match: 10 records" in out

    def test_diff_reports_first_divergent_beat(self, tmp_path, capsys):
        sim, live = self._write_pair(tmp_path, "clock-sync", capsys)
        lines = sim.read_text(encoding="utf-8").splitlines()
        import json as _json

        record = _json.loads(lines[5])
        node = sorted(record["values"])[0]
        record["values"][node] = 99
        lines[5] = _json.dumps(
            record, sort_keys=True, separators=(",", ":")
        )
        corrupted = tmp_path / "corrupted.jsonl"
        corrupted.write_text("\n".join(lines) + "\n", encoding="utf-8")
        code = main(["trace", "diff", str(sim), str(corrupted)])
        out = capsys.readouterr().out
        assert code == 1
        assert "traces diverge at beat 5" in out
        assert f"node {node}:" in out

    def test_diff_missing_file_exits_2(self, tmp_path, capsys):
        code = main(
            ["trace", "diff", str(tmp_path / "a.jsonl"),
             str(tmp_path / "b.jsonl")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_inspect_summarizes_trace(self, tmp_path, capsys):
        sim, _live = self._write_pair(tmp_path, "clock-sync", capsys, beats=20)
        code = main(["trace", "inspect", str(sim), "--k", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace {sim}" in out
        assert "beats" in out
        assert "converged" in out

    def test_inspect_series_prints_node_trajectory(self, tmp_path, capsys):
        sim, _live = self._write_pair(tmp_path, "clock-sync", capsys)
        code = main(
            ["trace", "inspect", str(sim), "--k", "6", "--series", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "node 0 :" in out

    def test_inspect_garbage_exits_2(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\n", encoding="utf-8")
        code = main(["trace", "inspect", str(garbage)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestMetricsExport:
    def _metrics_file(self, tmp_path, capsys, fmt="json"):
        path = tmp_path / ("metrics.json" if fmt == "json" else "metrics.prom")
        code = main(
            ["runtime", "--n", "4", "--f", "1", "--k", "6",
             "--seed", "0", "--beats", "20",
             "--metrics-out", str(path), "--metrics-format", fmt]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"wrote {fmt} metrics to {path}" in out
        return path, out

    def test_runtime_metrics_out_writes_valid_document(self, tmp_path, capsys):
        import json as _json

        from repro.obs import validate_metrics_json

        path, out = self._metrics_file(tmp_path, capsys)
        document = _json.loads(path.read_text(encoding="utf-8"))
        validate_metrics_json(document)
        names = {metric["name"] for metric in document["metrics"]}
        assert "runtime_messages_sent_total" in names
        assert "runtime_frames_sent_total" in names
        assert "runtime_beats_total" in names
        # The summary now also surfaces barrier health and frame counts.
        assert "health" in out
        assert "frames" in out

    def test_runtime_metrics_prometheus_format(self, tmp_path, capsys):
        path, _out = self._metrics_file(tmp_path, capsys, fmt="prometheus")
        text = path.read_text(encoding="utf-8")
        assert "# TYPE runtime_messages_sent_total counter" in text

    def test_trace_metrics_renders_prometheus(self, tmp_path, capsys):
        path, _out = self._metrics_file(tmp_path, capsys)
        code = main(["trace", "metrics", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE runtime_messages_sent_total counter" in out
        assert "runtime_messages_sent_total " in out

    def test_trace_metrics_json_round_trip(self, tmp_path, capsys):
        import json as _json

        path, _out = self._metrics_file(tmp_path, capsys)
        code = main(["trace", "metrics", str(path), "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        assert _json.loads(out) == _json.loads(
            path.read_text(encoding="utf-8")
        )

    def test_trace_metrics_rejects_non_metrics_json(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "other/1"}\n', encoding="utf-8")
        code = main(["trace", "metrics", str(bogus)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_cluster_metrics_dir(self, tmp_path, capsys):
        import json as _json

        from repro.obs import validate_metrics_json

        code = main(
            ["cluster", "run", "examples/cluster_smoke.py",
             "--only", "smoke-n4", "--metrics-out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "health" in out
        document = _json.loads(
            (tmp_path / "smoke-n4.metrics.json").read_text(encoding="utf-8")
        )
        validate_metrics_json(document)
        names = {metric["name"] for metric in document["metrics"]}
        assert "runtime_frames_sent_total" in names


class TestModuleEntryPoint:
    def test_python_dash_m(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "demo", "--n", "4", "--f", "1",
             "--k", "6", "--seed", "1"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr[-1500:]
        assert "converged" in result.stdout
