"""The mixed-dealing attack: a *documented, intentional* negative result.

These tests pin the boundary between our simplified 4-round GVSS coin and
the full Feldman-Micali construction: the attack must (a) keep inclusion
uniform (our grading guarantees that for n > 3f), (b) nevertheless split
the *recovered value* between correct nodes via recovery-share
equivocation, and therefore (c) destroy the coin's E0/E1 events — while
(d) the oracle coin, which realizes Definition 2.6 by construction, and
hence the paper's theorems, remain untouched.
"""

from __future__ import annotations

from repro.adversary.mixed_dealing import MixedDealingAdversary
from repro.analysis.convergence import ClockConvergenceMonitor
from repro.coin.feldman_micali import FeldmanMicaliCoin
from repro.coin.gvss import GRADE_LOW
from repro.coin.oracle import OracleCoin
from repro.core.clock2 import SSByz2Clock
from repro.core.pipeline import CoinFlipPipeline
from repro.net.simulator import Simulation


def pipeline_run(n, f, beats, seed=5):
    coin = FeldmanMicaliCoin(n, f)
    sim = Simulation(
        n,
        f,
        lambda i: CoinFlipPipeline(coin),
        adversary=MixedDealingAdversary(),
        seed=seed,
    )
    sim.run(coin.rounds)  # flush startup states
    agreements = 0
    for _ in range(beats):
        sim.run_beat()
        bits = {sim.nodes[i].root.rand for i in sim.honest_ids}
        agreements += len(bits) == 1
    return sim, agreements


class TestAttackMechanics:
    """Mechanics on a single coin invocation, replayed in the harness."""

    def _run_single_invocation(self, seed=3):
        import random

        from repro.coin.polynomial import evaluate
        from repro.coin.shamir import SymmetricBivariate, node_point
        from tests.conftest import CoinHarness

        n, f, dealer = 4, 1, 3
        coin = FeldmanMicaliCoin(n, f)
        field = coin.field
        rng = random.Random(99)
        dealing = SymmetricBivariate.random(field, 1, f, rng)
        good_rows = {0, 1}  # n - 2f correct nodes get consistent rows
        aligned = {0}  # half of the correct nodes get honest recovery

        def attack(round_index, visible):
            messages = []
            if round_index == 1:
                for receiver in range(n):
                    if receiver in good_rows or receiver == dealer:
                        row = dealing.row(receiver)
                    else:
                        row = tuple(
                            rng.randrange(field.modulus) for _ in range(f + 1)
                        )
                    messages.append((dealer, receiver, ("row", row)))
            elif round_index == 2:
                row = dealing.row(dealer)
                for receiver in range(n):
                    value = evaluate(field, row, node_point(receiver))
                    messages.append(
                        (dealer, receiver, ("xpt", ((dealer, value),)))
                    )
            elif round_index == 3:
                for receiver in range(n):
                    messages.append((dealer, receiver, ("vote", (dealer,))))
            else:
                true_share = evaluate(field, dealing.row(dealer), 0)
                for receiver in range(n):
                    share = (
                        true_share
                        if receiver in aligned
                        else (true_share + 7) % field.modulus
                    )
                    messages.append(
                        (dealer, receiver, ("rshare", ((dealer, share),)))
                    )
            return messages

        harness = CoinHarness(coin, n, f, faulty=frozenset({dealer}), seed=seed)
        outputs = harness.run(attack)
        states = {i: harness.instances[i].state for i in harness.instances}
        return dealer, outputs, states

    def test_corrupt_dealer_included_everywhere(self):
        """Inclusion stays uniform: the attack wins on value, not grades."""
        dealer, _, states = self._run_single_invocation()
        for state in states.values():
            assert state.grades[dealer] >= GRADE_LOW

    def test_recovered_values_split(self):
        """The aligned correct node recovers the planted secret 1; the
        rest fall back to 0 — the value-divergence channel."""
        dealer, _, states = self._run_single_invocation()
        recovered = {i: s.recovered.get(dealer) for i, s in states.items()}
        assert recovered[0] == 1
        assert set(recovered.values()) == {0, 1}

    def test_outputs_diverge(self):
        _, outputs, _ = self._run_single_invocation()
        assert len(set(outputs.values())) > 1


class TestDefinition26Broken:
    def test_agreement_collapses(self):
        _, agreements = pipeline_run(4, 1, beats=30)
        assert agreements < 10, (
            "the simplified coin unexpectedly resisted the mixed-dealing "
            "attack — if you hardened GVSS, update DESIGN.md and "
            "EXPERIMENTS.md accordingly"
        )

    def test_oracle_coin_unaffected(self):
        """Definition 2.6 as an ideal functionality shrugs: the adversary
        has no recovery shares to equivocate."""
        coin = OracleCoin(p0=0.4, p1=0.4, rounds=4)
        sim = Simulation(
            4,
            1,
            lambda i: CoinFlipPipeline(coin),
            adversary=MixedDealingAdversary(),
            seed=6,
        )
        sim.run(coin.rounds)
        agreements = 0
        for _ in range(30):
            sim.run_beat()
            bits = {sim.nodes[i].root.rand for i in sim.honest_ids}
            agreements += len(bits) == 1
        assert agreements >= 20  # p0 + p1 = 0.8 of beats agree in expectation


class TestProtocolLevelConsequence:
    def test_clock2_on_oracle_coin_converges_under_attack(self):
        """The paper's theorem holds whenever the coin honours its
        contract: with the oracle coin, ss-Byz-2-Clock converges even
        while the mixed-dealing adversary does its worst elsewhere."""
        sim = Simulation(
            4,
            1,
            lambda i: SSByz2Clock(OracleCoin(p0=0.4, p1=0.4, rounds=3)),
            adversary=MixedDealingAdversary(),
            seed=7,
        )
        monitor = ClockConvergenceMonitor(k=2)
        sim.add_monitor(monitor)
        sim.scramble()
        sim.run(100)
        assert monitor.convergence_beat() is not None
