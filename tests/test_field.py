"""Unit and property tests for the prime-field substrate."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coin.field import PrimeField, is_prime, smallest_prime_above
from repro.errors import ConfigurationError

FIELD = PrimeField(101)


class TestPrimality:
    def test_small_primes(self):
        assert [p for p in range(2, 30) if is_prime(p)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_negative_zero_one_not_prime(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_carmichael_numbers_rejected(self):
        # Classic pseudoprimes that fool weak tests.
        for composite in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_prime(composite)

    def test_large_prime(self):
        assert is_prime(2**61 - 1)  # Mersenne prime
        assert not is_prime(2**61 - 3)

    @given(st.integers(min_value=2, max_value=5000))
    def test_agrees_with_trial_division(self, value):
        by_trial = all(value % d for d in range(2, int(value**0.5) + 1))
        assert is_prime(value) == by_trial


class TestSmallestPrimeAbove:
    def test_remark_2_3_examples(self):
        assert smallest_prime_above(4) == 5
        assert smallest_prime_above(7) == 11
        assert smallest_prime_above(13) == 17

    def test_strictly_greater(self):
        assert smallest_prime_above(5) == 7  # not 5 itself

    @given(st.integers(min_value=0, max_value=10_000))
    def test_result_is_prime_and_above(self, n):
        p = smallest_prime_above(n)
        assert p > n
        assert is_prime(p)


class TestPrimeField:
    def test_rejects_composite_modulus(self):
        with pytest.raises(ConfigurationError):
            PrimeField(100)

    def test_for_system_exceeds_n(self):
        for n in (1, 4, 16, 40, 100):
            field = PrimeField.for_system(n)
            assert field.modulus > n

    def test_for_system_floor(self):
        # Tiny systems still get a non-degenerate field.
        assert PrimeField.for_system(1).modulus >= 17

    def test_basic_arithmetic(self):
        assert FIELD.add(100, 5) == 4
        assert FIELD.sub(3, 10) == 94
        assert FIELD.mul(20, 30) == (600 % 101)
        assert FIELD.neg(1) == 100

    def test_inverse(self):
        for a in range(1, 101):
            assert FIELD.mul(a, FIELD.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.inv(0)

    def test_div(self):
        assert FIELD.mul(FIELD.div(7, 13), 13) == 7

    def test_pow_matches_builtin(self):
        assert FIELD.pow(3, 50) == pow(3, 50, 101)

    def test_contains(self):
        assert FIELD.contains(0)
        assert FIELD.contains(100)
        assert not FIELD.contains(101)
        assert not FIELD.contains(-1)
        assert not FIELD.contains("5")
        assert not FIELD.contains(True) or True  # bools are ints; see below

    def test_random_element_in_range(self):
        rng = random.Random(1)
        values = {FIELD.random_element(rng) for _ in range(200)}
        assert all(0 <= v < 101 for v in values)
        assert len(values) > 50  # actually random

    def test_equality_and_hash(self):
        assert PrimeField(101) == FIELD
        assert hash(PrimeField(101)) == hash(FIELD)
        assert PrimeField(103) != FIELD

    @given(st.integers(), st.integers())
    def test_field_axioms_sample(self, a, b):
        a, b = FIELD.element(a), FIELD.element(b)
        assert FIELD.add(a, b) == FIELD.add(b, a)
        assert FIELD.mul(a, b) == FIELD.mul(b, a)
        assert FIELD.add(a, FIELD.neg(a)) == 0
        assert FIELD.sub(a, b) == FIELD.add(a, FIELD.neg(b))

    @given(st.integers(), st.integers(), st.integers())
    def test_distributivity(self, a, b, c):
        a, b, c = (FIELD.element(v) for v in (a, b, c))
        left = FIELD.mul(a, FIELD.add(b, c))
        right = FIELD.add(FIELD.mul(a, b), FIELD.mul(a, c))
        assert left == right
