"""Graded VSS properties, with and without Byzantine dealers."""

from __future__ import annotations

import random
from typing import Any

from repro.coin.feldman_micali import FeldmanMicaliCoin
from repro.coin.field import PrimeField
from repro.coin.gvss import GRADE_HIGH, GRADE_LOW, GRADE_NONE, GradedSharingState
from repro.coin.polynomial import evaluate
from repro.coin.shamir import SymmetricBivariate, node_point

from tests.conftest import CoinHarness


def run_gvss(n, f, *, faulty=frozenset(), byz_hook=None, seed=0):
    """Run one full coin invocation and return the per-node GVSS states."""
    algorithm = FeldmanMicaliCoin(n, f)
    harness = CoinHarness(algorithm, n, f, faulty=faulty, seed=seed)
    outputs = harness.run(byz_hook)
    states = {i: harness.instances[i].state for i in harness.instances}
    return outputs, states


class TestFaultFree:
    def test_all_dealers_grade_high_everywhere(self):
        _, states = run_gvss(4, 1)
        for state in states.values():
            assert all(g == GRADE_HIGH for g in state.grades.values())

    def test_secrets_recovered_identically(self):
        _, states = run_gvss(4, 1, seed=3)
        recovered = [tuple(sorted(s.recovered.items())) for s in states.values()]
        assert len(set(recovered)) == 1

    def test_recovered_secrets_match_dealt_bits(self):
        _, states = run_gvss(7, 2, seed=5)
        dealt = {i: s.my_secret for i, s in states.items()}
        for state in states.values():
            for dealer, secret in dealt.items():
                assert state.recovered[dealer] == secret

    def test_outputs_common(self):
        outputs, _ = run_gvss(7, 2, seed=8)
        assert len(set(outputs.values())) == 1

    def test_output_parity_of_secrets(self):
        outputs, states = run_gvss(4, 1, seed=9)
        expected = 0
        for state in states.values():
            expected ^= state.my_secret & 1
        assert set(outputs.values()) == {expected}


class TestByzantineDealers:
    def _silent(self, round_index, visible):
        return []

    def test_silent_dealer_graded_out(self):
        n, f = 4, 1
        faulty = frozenset({3})
        _, states = run_gvss(n, f, faulty=faulty, byz_hook=self._silent)
        for state in states.values():
            assert state.grades[3] == GRADE_NONE
            # Honest dealers still sail through.
            for dealer in range(3):
                assert state.grades[dealer] == GRADE_HIGH

    def test_honest_secrets_survive_lying_recovery(self):
        """A faulty node broadcasting wrong zero-shares cannot corrupt an
        honest dealer's recovered secret (Berlekamp-Welch absorbs f lies)."""
        n, f = 4, 1
        faulty = frozenset({3})
        field = PrimeField.for_system(n)

        def lie_in_recovery(round_index, visible):
            if round_index != 4:
                return []
            payload = ("rshare", tuple((d, 77 % field.modulus) for d in range(n)))
            return [(3, r, payload) for r in range(n)]

        _, states = run_gvss(n, f, faulty=faulty, byz_hook=lie_in_recovery, seed=2)
        dealt = {i: s.my_secret for i, s in states.items()}
        for state in states.values():
            for dealer, secret in dealt.items():
                assert state.recovered[dealer] == secret

    def test_grade_high_implies_grade_low_everywhere(self):
        """The graded property: grade 2 at one correct node forces grade >= 1
        at every correct node, even under vote equivocation."""
        n, f = 7, 2
        faulty = frozenset({5, 6})

        def equivocate_votes(round_index, visible):
            if round_index != 3:
                return []
            messages = []
            for sender in faulty:
                for receiver in range(n):
                    vote: Any = tuple(range(n)) if receiver % 2 else ()
                    messages.append((sender, receiver, ("vote", vote)))
            return messages

        _, states = run_gvss(
            n, f, faulty=faulty, byz_hook=equivocate_votes, seed=4
        )
        for dealer in range(n):
            grades = [state.grades[dealer] for state in states.values()]
            if GRADE_HIGH in grades:
                assert all(g >= GRADE_LOW for g in grades)

    def test_inconsistent_dealer_rows_detected(self):
        """A dealer sending unrelated random rows gathers no honest OKs."""
        n, f = 4, 1
        faulty = frozenset({3})
        field = PrimeField.for_system(n)
        rng = random.Random(0)

        def bad_dealing(round_index, visible):
            if round_index != 1:
                return []
            return [
                (
                    3,
                    receiver,
                    ("row", tuple(rng.randrange(field.modulus) for _ in range(f + 1))),
                )
                for receiver in range(n)
            ]

        _, states = run_gvss(n, f, faulty=faulty, byz_hook=bad_dealing, seed=6)
        for state in states.values():
            assert state.grades[3] <= GRADE_LOW


class TestUnpredictability:
    def test_f_rows_leave_secret_information_theoretically_hidden(self):
        """Before the recover round the adversary holds f points of each
        honest zero polynomial (degree f): every secret is still possible."""
        field = PrimeField(17)
        f = 2
        dealing = SymmetricBivariate.random(field, 13, f, random.Random(7))
        # Adversary corrupted nodes 0 and 1: it knows rows 0 and 1, hence
        # two points of the degree-2 zero polynomial S(., 0).
        known = [
            (node_point(i), evaluate(field, dealing.row(i), 0)) for i in (0, 1)
        ]
        from repro.coin.polynomial import interpolate

        consistent_secrets = set()
        for candidate in range(field.modulus):
            poly = interpolate(field, known + [(0, candidate)])
            if len(poly) <= f + 1:
                consistent_secrets.add(candidate)
        assert consistent_secrets == set(range(field.modulus))


class TestScramble:
    def test_scramble_stays_in_domain(self):
        state = GradedSharingState(4, 1, PrimeField.for_system(4))
        rng = random.Random(11)
        for _ in range(20):
            state.scramble(rng)
            assert state.my_secret in (0, 1)
            for row in state.rows.values():
                assert all(0 <= c < state.field.modulus for c in row)
            for grade in state.grades.values():
                assert grade in (GRADE_NONE, GRADE_LOW, GRADE_HIGH)
