"""Continuous-time event engine: the differential pin and its physics.

The load-bearing test is the zero-drift / zero-delay differential: the
event-driven :class:`~repro.net.events.ContinuousSimulation` must replay
the lock-step :class:`~repro.net.engine.ReferenceEngine` *bit-identically*
— same scramble, same adversary, same JSONL trace bytes — because that
is the only argument that the continuous-time machinery changes the
timing model and nothing else.  Around it: drift/delay determinism
(campaign worker counts, spec label permutations), drifting-clock
convergence, the pulse-barrier runtime (local and TCP), the
stalled-peer pulse timeout, and the no-numpy import leg.
"""

from __future__ import annotations

import asyncio
import hashlib
import subprocess
import sys

import pytest

from repro.adversary.strategies import EquivocatorAdversary
from repro.analysis.campaign import ScenarioSpec, run_campaign, scenario_grid
from repro.coin.oracle import OracleCoin
from repro.core.clock_sync import SSByzClockSync
from repro.errors import ConfigurationError
from repro.net.events import (
    ContinuousSimulation,
    DriftingClock,
    EventHeap,
    KeyedDelays,
    PulseSynchronizer,
    run_continuous,
)
from repro.net.simulator import Simulation
from repro.net.trace import Tracer
from repro.runtime import run_runtime

K = 8

#: The drift case every drifting-clock test shares: slow enough drift
#: that no message can miss its beat's close over the horizon
#: (slowest sender's arrival at b*1.00503 + 0.1 stays ahead of the
#: fastest receiver's close at (b+1)*0.99502 for every b < 89).
DRIFT = dict(rho=0.005, delay_bounds=(0.0, 0.1), pulse_period=1.0)
TIMING = (0.005, 0.0, 0.1, 1.0)


def _factory(_node_id):
    return SSByzClockSync(K, lambda: OracleCoin())


def _adversary(name):
    return EquivocatorAdversary() if name == "equivocator" else None


def _reference_jsonl(seed: int, beats: int, adversary: str) -> str:
    sim = Simulation(
        4, 1, _factory, adversary=_adversary(adversary), seed=seed,
        engine="reference",
    )
    tracer = Tracer(lambda root: root.clock_value)
    sim.add_monitor(tracer)
    sim.scramble()
    sim.run(beats)
    return tracer.to_jsonl()


def _event_jsonl(seed: int, beats: int, adversary: str) -> str:
    result = run_continuous(
        4, 1, _factory, adversary=_adversary(adversary), seed=seed,
        beats=beats, rho=0.0, delay_bounds=(0.0, 0.0), k=K,
    )
    return result.to_jsonl()


class TestDifferentialPin:
    """Zero drift + zero delay == the lock-step reference engine."""

    @pytest.mark.parametrize("adversary", ["none", "equivocator"])
    @pytest.mark.parametrize("seed", range(3))
    def test_bit_identical_fast_lane(self, seed, adversary):
        assert _event_jsonl(seed, 20, adversary) == (
            _reference_jsonl(seed, 20, adversary)
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("adversary", ["none", "equivocator"])
    @pytest.mark.parametrize("seed", range(3, 10))
    def test_bit_identical_remaining_seeds(self, seed, adversary):
        assert _event_jsonl(seed, 20, adversary) == (
            _reference_jsonl(seed, 20, adversary)
        )

    def test_zero_drift_pulses_and_closes_coincide(self):
        sim = ContinuousSimulation(4, 1, _factory, seed=0)
        assert sim.pulse_skew(7) == 0.0
        times = {s.close_time(3) for s in sim.synchronizers.values()}
        assert times == {4.0}


class TestDriftPhysics:
    def test_rates_stay_in_band_and_differ(self):
        clocks = [DriftingClock(1, i, 0.01) for i in range(8)]
        assert all(0.99 <= c.rate <= 1.01 for c in clocks)
        assert len({c.rate for c in clocks}) > 1  # keyed per node

    def test_zero_rho_rate_is_exactly_one(self):
        assert DriftingClock(123, 5, 0.0).rate == 1.0

    def test_drifting_run_converges_with_skew(self):
        for adversary in ("none", "equivocator"):
            result = run_continuous(
                4, 1, _factory, adversary=_adversary(adversary), seed=0,
                beats=40, k=K, **DRIFT,
            )
            assert result.converged
            assert result.late_messages == 0
            assert result.max_pulse_skew > 0.0
            assert result.converged_time is not None
            assert result.converged_time > result.converged_beat  # rate < 1+rho side

    def test_same_seed_reproduces_exactly(self):
        def run():
            return run_continuous(
                4, 1, _factory, adversary=EquivocatorAdversary(), seed=3,
                beats=30, k=K, **DRIFT,
            )

        a, b = run(), run()
        assert a.records == b.records
        assert a.max_pulse_skew == b.max_pulse_skew
        assert a.converged_time == b.converged_time

    def test_late_messages_counted_when_delay_exceeds_period(self):
        """Delays past the close budget must surface as drops, not hangs."""
        result = run_continuous(
            4, 1, _factory, seed=0, beats=10, rho=0.0,
            delay_bounds=(1.5, 1.5), pulse_period=1.0, k=K,
        )
        assert result.late_messages > 0
        assert result.beats_run == 10  # ran the full horizon regardless


class TestValidation:
    def test_bad_rho_rejected(self):
        for rho in (-0.1, 1.0, 1.5):
            with pytest.raises(ConfigurationError, match="rho"):
                DriftingClock(0, 0, rho)

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigurationError, match="period"):
            DriftingClock(0, 0, 0.0, period=0.0)

    def test_bad_delay_bounds_rejected(self):
        for bounds in ((-0.1, 0.5), (0.5, 0.1)):
            with pytest.raises(ConfigurationError, match="delay bounds"):
                KeyedDelays(0, *bounds)

    def test_single_use(self):
        sim = ContinuousSimulation(4, 1, _factory, seed=0)
        sim.run(2)
        with pytest.raises(ConfigurationError, match="single-use"):
            sim.run(2)

    def test_scramble_unknown_id_rejected(self):
        sim = ContinuousSimulation(4, 1, _factory, seed=0)
        with pytest.raises(ConfigurationError, match="scramble"):
            sim.scramble([9])

    def test_timing_axis_rejects_beat_model_machinery(self):
        import repro

        with pytest.raises(ConfigurationError, match="link"):
            repro.synchronize(
                n=4, f=1, k=K, timing=TIMING, link="lossy",
                link_params={"loss": 0.1}, max_beats=20,
            )

    def test_timing_must_have_four_fields(self):
        import repro

        with pytest.raises(ConfigurationError, match="timing"):
            repro.synchronize(n=4, f=1, k=K, timing=(0.001,), max_beats=20)


class TestEventHeapAndSynchronizer:
    def test_pop_order_total_and_fifo_on_ties(self):
        heap = EventHeap()
        heap.push((2.0, 0, 0), "late")
        heap.push((1.0, 0, 0), "first-pushed-tie")
        heap.push((1.0, 0, 0), "second-pushed-tie")
        heap.push((0.5, 1, 0), "earliest")
        order = [heap.pop()[1] for _ in range(len(heap))]
        assert order == [
            "earliest", "first-pushed-tie", "second-pushed-tie", "late",
        ]

    def test_late_arrival_counted_and_refused(self):
        sim = ContinuousSimulation(4, 1, _factory, seed=0)
        sync = sim.synchronizers[0]
        sync.send(0)
        sync.close(0, lambda root: None)
        from repro.net.message import Envelope

        late = Envelope(1, 0, "root", "stale", 0)
        assert sync.deliver(0, (1, 0), late) is False
        assert sync.late_messages == 1
        assert sync.deliver(1, (1, 0), late) is True


class TestTrialAndCampaignIntegration:
    def test_synchronize_timing_path(self):
        import repro

        result = repro.synchronize(
            n=4, f=1, k=K, timing=TIMING, max_beats=40, trace=True,
        )
        assert result.converged
        assert result.pulse_skew > 0.0
        assert result.converged_time is not None
        assert len(result.records) == result.beats_run == 40

    def test_spec_carries_timing_into_label_and_config(self):
        spec = ScenarioSpec(n=4, f=1, k=K, timing=TIMING, max_beats=40)
        spec.validate()
        assert "timing[rho=0.005,d=0.0-0.1,period=1.0]" in spec.label
        assert spec.build_config().timing == TIMING

    def test_spec_rejects_timing_with_beat_axes(self):
        spec = ScenarioSpec(
            n=4, f=1, k=K, timing=TIMING, link="lossy",
            link_params=(("loss", 0.1),), max_beats=40,
        )
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_grid_crosses_timing_axis(self):
        specs = scenario_grid(
            [4], ks=[K], adversaries=["none", "equivocator"],
            timings=[(), TIMING], max_beats=40,
        )
        assert len(specs) == 4
        assert sum(1 for s in specs if s.timing == TIMING) == 2

    @pytest.mark.slow
    def test_campaign_worker_count_invariance(self):
        specs = scenario_grid(
            [4], ks=[K], adversaries=["none", "equivocator"],
            timings=[TIMING], max_beats=30,
        )
        serial = run_campaign(specs, range(2), workers=1)
        parallel = run_campaign(specs, range(2), workers=2)
        assert [e.sweep.results for e in serial] == (
            [e.sweep.results for e in parallel]
        )

    @pytest.mark.slow
    def test_label_permutation_invariance(self):
        """Spec order must not leak into per-spec trial results."""
        specs = scenario_grid(
            [4], ks=[K], adversaries=["none", "equivocator"],
            timings=[TIMING], max_beats=30,
        )
        forward = {
            e.spec.label: e.sweep.results
            for e in run_campaign(specs, range(2), workers=1)
        }
        backward = {
            e.spec.label: e.sweep.results
            for e in run_campaign(list(reversed(specs)), range(2), workers=1)
        }
        assert forward == backward


class TestPulseRuntime:
    def _run(self, transport, rho=0.01, beats=12):
        return run_runtime(
            4, 1, _factory, adversary=EquivocatorAdversary(), seed=0,
            beats=beats, transport=transport, k=K, sync="pulse",
            pulse_period=0.05, rho=rho,
        )

    def test_local_converges_and_reports_skew(self):
        result = self._run("local")
        assert result.sync == "pulse"
        assert result.converged
        assert result.pulse_skew_s is not None and result.pulse_skew_s >= 0.0
        assert result.converged_time_s is not None
        assert result.pulse_timeouts == 0
        assert result.late_messages == 0

    @pytest.mark.slow
    def test_tcp_converges_and_reports_skew(self):
        result = self._run("tcp")
        assert result.converged
        assert result.pulse_skew_s is not None
        assert result.late_messages == 0

    def test_zero_drift_pulse_trace_matches_beat_trace(self):
        """sync="pulse" changes the clock source, not the trajectory."""
        beat = run_runtime(
            4, 1, _factory, adversary=EquivocatorAdversary(), seed=0,
            beats=12, transport="local", k=K,
        )
        pulse = self._run("local", rho=0.0)
        assert hashlib.sha256(pulse.to_jsonl().encode()).hexdigest() == (
            hashlib.sha256(beat.to_jsonl().encode()).hexdigest()
        )

    def test_rho_requires_pulse_sync(self):
        with pytest.raises(ConfigurationError, match="rho"):
            run_runtime(4, 1, _factory, seed=0, beats=4, transport="local",
                        k=K, sync="beat", rho=0.01)

    def test_unknown_sync_rejected(self):
        with pytest.raises(ConfigurationError, match="sync"):
            run_runtime(4, 1, _factory, seed=0, beats=4, transport="local",
                        k=K, sync="cadence")


class TestStalledPeerPulseTimeout:
    """A dead peer must trip the pulse deadline, get counted, and let
    the run terminate — no hang (pytest-timeout is the backstop)."""

    def test_barrier_times_out_counts_and_advances(self):
        from repro.runtime.sync import PulseBarrier
        from repro.runtime.transport import LocalTransport
        from repro.runtime.wire import END, Frame, encode_frame

        async def scenario():
            transport = LocalTransport()
            endpoint = await transport.open(0)
            await transport.open(1)  # peer 1 exists but never speaks
            barrier = PulseBarrier(
                endpoint, expected=[0, 1],
                clock=DriftingClock(0, 0, 0.0, period=0.05),
            )
            await endpoint.send(0, encode_frame(
                Frame(kind=END, sender=0, beat=0)
            ))
            inbox0 = await barrier.collect(0)
            await endpoint.send(0, encode_frame(
                Frame(kind=END, sender=0, beat=1)
            ))
            inbox1 = await barrier.collect(1)
            await transport.aclose()
            return barrier, inbox0, inbox1

        barrier, inbox0, inbox1 = asyncio.run(scenario())
        assert inbox0 == {} and inbox1 == {}
        assert barrier.pulse_timeouts == 2
        assert barrier.barrier_timeouts == 2  # flows into existing health
        assert barrier.counters["pulse_timeouts"] == 2
        assert barrier.beat == 2  # the run moved on cleanly
        assert len(barrier.pulse_closes) == 2

    def test_healthy_peer_closes_before_the_deadline(self):
        from repro.runtime.sync import PulseBarrier
        from repro.runtime.transport import LocalTransport
        from repro.runtime.wire import END, Frame, encode_frame

        async def scenario():
            transport = LocalTransport()
            a = await transport.open(0)
            b = await transport.open(1)
            barrier = PulseBarrier(
                a, expected=[0, 1],
                clock=DriftingClock(0, 0, 0.0, period=30.0),
            )
            await a.send(0, encode_frame(Frame(kind=END, sender=0, beat=0)))
            await b.send(0, encode_frame(Frame(kind=END, sender=1, beat=0)))
            loop = asyncio.get_running_loop()
            start = loop.time()
            await barrier.collect(0)
            elapsed = loop.time() - start
            await transport.aclose()
            return barrier, elapsed

        barrier, elapsed = asyncio.run(scenario())
        assert barrier.pulse_timeouts == 0
        assert elapsed < 5.0  # full marker set closes early, not at 30s

    def test_stalled_node_end_to_end_run_terminates(self):
        """Whole-run integration: one synchronizer joins no beats; the
        other three honest nodes still finish every beat on deadline
        closes and the result surfaces the timeouts."""
        result = run_runtime(
            4, 1, _factory, adversary=EquivocatorAdversary(), seed=0,
            beats=3, transport="local", k=K, sync="pulse",
            pulse_period=0.02, rho=0.0, stall_ids=(2,),
        )
        assert result.beats_run == 3
        assert result.pulse_timeouts > 0
        assert result.health["barrier_timeouts"] > 0


class TestNoNumpyLeg:
    def test_event_engine_imports_without_numpy(self):
        """The continuous-time engine must not need the ``fast`` extra."""
        code = (
            "import sys; sys.modules['numpy'] = None\n"
            "from repro.net.events import run_continuous\n"
            "from repro.core.clock_sync import SSByzClockSync\n"
            "from repro.coin.oracle import OracleCoin\n"
            "r = run_continuous(4, 1, lambda i: SSByzClockSync(8, "
            "lambda: OracleCoin()), seed=0, beats=8, rho=0.003, "
            "delay_bounds=(0.0, 0.05), k=8)\n"
            "assert r.beats_run == 8\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env={"PYTHONPATH": "src"},
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"
