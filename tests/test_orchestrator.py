"""Tests for the multi-process cluster orchestrator.

Spec validation and file loading are cheap and covered densely; actual
cluster launches spawn real OS processes over real TCP loopback sockets,
so only two end-to-end runs exist — one pinning the cluster's trajectory
to the single-process runtime (and through it, to the lock-step
simulator), one exercising failure surfacing.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.errors import ConfigurationError, TransportError
from repro.net.trace import records_to_jsonl
from repro.runtime import ClusterSpec, load_specs, run_cluster, run_runtime
from repro.runtime.orchestrator import _partition


def _spec(**overrides) -> ClusterSpec:
    base = dict(name="t", n=4, f=1, k=6, beats=8, processes=2)
    base.update(overrides)
    return ClusterSpec(**base)


class TestClusterSpec:
    def test_valid_spec_passes(self):
        _spec().validate()

    @pytest.mark.parametrize("overrides,match", [
        ({"name": ""}, "name"),
        ({"n": 3, "f": 1}, "f < n/3"),
        ({"beats": 0}, "beat"),
        ({"processes": 0}, "processes"),
        ({"processes": 5}, "processes"),
        ({"protocol": "paxos"}, "protocol"),
        ({"adversary": "gremlin"}, "adversary"),
        ({"coin": "quantum"}, "coin"),
        ({"codec": "morse"}, "codec"),
    ])
    def test_inconsistent_specs_rejected(self, overrides, match):
        with pytest.raises(ConfigurationError, match=match):
            _spec(**overrides).validate()

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            _spec().n = 7  # type: ignore[misc]


class TestPartition:
    @pytest.mark.parametrize("n,processes", [
        (4, 1), (4, 2), (4, 4), (7, 3), (16, 5),
    ])
    def test_contiguous_cover(self, n, processes):
        blocks = _partition(n, processes)
        assert len(blocks) == processes
        assert all(blocks)  # never an idle worker
        flat = [i for block in blocks for i in block]
        assert flat == list(range(n))
        # Balanced: block sizes differ by at most one.
        sizes = {len(block) for block in blocks}
        assert max(sizes) - min(sizes) <= 1


class TestLoadSpecs:
    def _write(self, tmp_path, body: str):
        path = tmp_path / "spec.py"
        path.write_text(textwrap.dedent(body), encoding="utf-8")
        return str(path)

    def test_loads_the_shipped_example(self):
        specs = load_specs("examples/cluster_smoke.py")
        assert [s.name for s in specs] == ["smoke-n4"]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_specs(str(tmp_path / "nope.py"))

    def test_import_error_rejected(self, tmp_path):
        path = self._write(tmp_path, "import no_such_module_anywhere\n")
        with pytest.raises(ConfigurationError, match="failed to import"):
            load_specs(path)

    def test_missing_experiments_rejected(self, tmp_path):
        path = self._write(tmp_path, "x = 1\n")
        with pytest.raises(ConfigurationError, match="experiments"):
            load_specs(path)

    def test_wrong_element_type_rejected(self, tmp_path):
        path = self._write(tmp_path, "experiments = [{'name': 'a'}]\n")
        with pytest.raises(ConfigurationError, match="ClusterSpec"):
            load_specs(path)

    def test_empty_list_rejected(self, tmp_path):
        path = self._write(tmp_path, "experiments = []\n")
        with pytest.raises(ConfigurationError, match="non-empty"):
            load_specs(path)

    def test_duplicate_names_rejected(self, tmp_path):
        path = self._write(tmp_path, """\
            from repro.runtime import ClusterSpec
            experiments = [
                ClusterSpec(name="a", n=4, f=1),
                ClusterSpec(name="a", n=7, f=2),
            ]
        """)
        with pytest.raises(ConfigurationError, match="duplicate"):
            load_specs(path)

    def test_invalid_member_spec_rejected(self, tmp_path):
        path = self._write(tmp_path, """\
            from repro.runtime import ClusterSpec
            experiments = [ClusterSpec(name="bad", n=3, f=1)]
        """)
        with pytest.raises(ConfigurationError, match="f < n/3"):
            load_specs(path)

    def test_good_file_loads_in_order(self, tmp_path):
        path = self._write(tmp_path, """\
            from repro.runtime import ClusterSpec
            experiments = [
                ClusterSpec(name="a", n=4, f=1, codec="binary"),
                ClusterSpec(name="b", n=7, f=2, processes=3),
            ]
        """)
        specs = load_specs(path)
        assert [s.name for s in specs] == ["a", "b"]
        assert specs[0].codec == "binary"
        assert specs[1].processes == 3


class TestRunCluster:
    def test_two_process_cluster_matches_single_process_run(self):
        """The flagship cluster claim: splitting the same seeded system
        across OS processes moves bytes, not the trajectory."""
        spec = ClusterSpec(
            name="ident", n=4, f=1, k=6, beats=10, processes=2,
            codec="binary", seed=0,
        )
        result = run_cluster(spec)
        assert result.beats_run == 10
        assert result.barrier_timeouts == 0
        assert result.malformed_frames == 0
        assert all(len(row) == 4 for row in result.history)

        # The exact factory the cluster workers build from the spec names.
        from repro import coin_by_name
        from repro.core.protocol import resolve_protocol

        factory = resolve_protocol(spec.protocol).factory(
            spec.n, spec.f, spec.k,
            coin_factory=coin_by_name(spec.coin, spec.n, spec.f),
        )
        single = run_runtime(
            4, 1, factory,
            seed=0, beats=10, transport="local", codec="binary", k=6,
        )
        assert result.to_jsonl() == single.to_jsonl()
        assert records_to_jsonl(result.records) == result.to_jsonl()

    def test_worker_failure_surfaces_as_transport_error(self):
        """A spec that validates fine at the parent but fails inside the
        worker (here: a listener host nobody can bind) kills the whole
        cluster and names the failing worker."""
        spec = _spec(beats=2, host="203.0.113.1")  # TEST-NET-3: unbindable
        with pytest.raises(TransportError, match="worker"):
            run_cluster(spec)
