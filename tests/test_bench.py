"""The benchmark subsystem: registry, result schema, harness, gate.

Covers the ISSUE-3 acceptance points: registry completeness (every
``benchmarks/`` entry registered exactly once), ``BenchResult`` schema
round-trips, gate exit codes on pass/regress/missing-baseline, and the
``bench list/run/compare`` CLI smoke (see also ``tests/test_cli.py``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench import (
    REPORT_SCHEMA,
    RESULT_SCHEMA,
    SUMMARY_SCHEMA,
    Benchmark,
    BenchOutcome,
    BenchResult,
    REGISTRY,
    all_benchmarks,
    get_benchmark,
    register,
    result_key,
    run_benchmark,
    run_tier,
    select_tier,
    validate_result_record,
    validate_summary,
)
from repro.bench.gate import (
    Delta,
    compare_summaries,
    compare_to_baselines,
    empty_baselines,
    parse_tolerance,
    update_baselines,
)
from repro.errors import ConfigurationError

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"


def _toy_runner(value: float = 1.0, fail: bool = False) -> BenchOutcome:
    result = BenchResult(
        benchmark="toy",
        metric="latency",
        value=value,
        unit="beats",
        scenario={"n": 4},
        direction="lower",
    )
    return BenchOutcome(
        results=(result,),
        failures=("toy check failed",) if fail else (),
        tables=(("toy_table", "toy output"),),
    )


@pytest.fixture
def toy_benchmark():
    bench = register(
        Benchmark(
            name="toy",
            tier="smoke",
            runner=_toy_runner,
            params={"value": 1.0},
            tier_params={"smoke": {"value": 2.0}},
            description="toy benchmark for tests",
        )
    )
    yield bench
    REGISTRY.pop("toy", None)


class TestRegistry:
    def test_every_bench_file_registered_exactly_once(self):
        """benchmarks/bench_<name>.py files <-> registry names, 1:1."""
        file_names = {
            path.stem.removeprefix("bench_")
            for path in BENCH_DIR.glob("bench_*.py")
        }
        registered = {b.name for b in all_benchmarks()}
        assert file_names == registered
        assert len(all_benchmarks()) == len(registered)  # no duplicates

    def test_registration_count(self):
        # Twelve ported legacy entry points + the live-runtime benchmark
        # + the cross-protocol comparison over the Protocol seam
        # + the continuous-time pulse precision suite.
        assert len({b.name for b in all_benchmarks()}) == 16

    def test_sources_point_at_their_shims(self):
        for bench in all_benchmarks():
            assert bench.source == f"benchmarks/bench_{bench.name}.py"
            assert (REPO_ROOT / bench.source).exists()

    def test_double_registration_rejected(self, toy_benchmark):
        with pytest.raises(ConfigurationError, match="already registered"):
            register(toy_benchmark)

    def test_tiers_are_cumulative(self):
        smoke = {b.name for b in select_tier("smoke")}
        full = {b.name for b in select_tier("full")}
        nightly = {b.name for b in select_tier("nightly")}
        assert smoke < full < nightly
        assert nightly == {b.name for b in all_benchmarks()}
        assert "engines" in smoke and "link_conditions" in smoke
        assert "fig_logk" in nightly - full

    def test_unknown_tier_and_name_rejected(self):
        with pytest.raises(ConfigurationError):
            select_tier("hourly")
        with pytest.raises(ConfigurationError):
            get_benchmark("no-such-benchmark")
        with pytest.raises(ConfigurationError):
            Benchmark(name="x", tier="hourly", runner=_toy_runner)

    def test_params_for_merges_tier_overrides(self, toy_benchmark):
        assert toy_benchmark.params_for("full") == {"value": 1.0}
        assert toy_benchmark.params_for("smoke") == {"value": 2.0}
        assert toy_benchmark.params_for("nightly") == {"value": 1.0}


class TestResultSchema:
    def test_round_trip(self):
        result = BenchResult(
            benchmark="toy",
            metric="latency",
            value=4,
            unit="beats",
            scenario={"n": 7, "loss": 0.1, "protocol": "clock-sync"},
            direction="lower",
            gated=False,
        )
        record = result.to_json()
        assert record["schema"] == RESULT_SCHEMA
        assert BenchResult.from_json(record) == result
        assert BenchResult.from_json(json.loads(json.dumps(record))) == result

    def test_axes_normalized_and_value_coerced(self):
        a = BenchResult("b", "m", 1, "u", scenario={"x": 1, "a": 2})
        b = BenchResult("b", "m", 1.0, "u", scenario=(("a", 2), ("x", 1)))
        assert a == b
        assert isinstance(a.value, float)

    def test_result_key_format(self):
        result = BenchResult(
            "link_conditions", "success_rate", 1.0, "fraction",
            scenario={"protocol": "clock-sync", "loss": 0.1},
            direction="higher",
        )
        assert result_key(result) == (
            "link_conditions/success_rate{loss=0.1,protocol=clock-sync}"
        )

    def test_invalid_records_rejected(self):
        good = BenchResult("b", "m", 1, "u").to_json()
        for corruption in (
            {"schema": "bogus/9"},
            {"metric": ""},
            {"value": "fast"},
            {"value": True},
            {"direction": "sideways"},
            {"scenario": {"axis": [1, 2]}},
            {"gated": "yes"},
        ):
            record = dict(good, **corruption)
            with pytest.raises(ValueError):
                validate_result_record(record)
        with pytest.raises(ValueError):
            BenchResult("b", "m", 1, "u", direction="sideways")

    def test_schema_valid_against_jsonschema_if_available(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = {
            "type": "object",
            "required": ["schema", "benchmark", "metric", "value", "unit",
                         "scenario", "direction", "gated"],
            "properties": {
                "schema": {"const": RESULT_SCHEMA},
                "benchmark": {"type": "string", "minLength": 1},
                "metric": {"type": "string", "minLength": 1},
                "value": {"type": "number"},
                "unit": {"type": "string"},
                "scenario": {
                    "type": "object",
                    "additionalProperties": {
                        "type": ["number", "string", "boolean"]
                    },
                },
                "direction": {"enum": ["higher", "lower"]},
                "gated": {"type": "boolean"},
            },
        }
        record = BenchResult(
            "toy", "latency", 1.5, "beats", scenario={"n": 4}
        ).to_json()
        jsonschema.validate(record, schema)


class TestHarness:
    def test_run_benchmark_writes_report_and_tables(
        self, toy_benchmark, tmp_path
    ):
        report = run_benchmark(toy_benchmark, "full", results_dir=tmp_path)
        assert report.outcome.ok
        assert report.params == {"value": 1.0}
        written = json.loads((tmp_path / "toy.json").read_text())
        assert written["schema"] == REPORT_SCHEMA  # envelope, not record
        assert written["benchmark"] == "toy"
        assert written["tier"] == "full"
        for record in written["results"]:
            validate_result_record(record)
        assert (tmp_path / "toy_table.txt").read_text() == "toy output\n"

    def test_smoke_artifacts_get_their_own_suffix(
        self, toy_benchmark, tmp_path
    ):
        report = run_benchmark(toy_benchmark, "smoke", results_dir=tmp_path)
        assert report.params == {"value": 2.0}
        assert (tmp_path / "toy.smoke.json").exists()
        assert (tmp_path / "toy_table.smoke.txt").exists()
        assert not (tmp_path / "toy.json").exists()

    def test_run_tier_summary_round_trip(self, toy_benchmark, tmp_path):
        summary_path = tmp_path / "BENCH_summary.json"
        summary = run_tier(
            "smoke",
            benchmarks=[toy_benchmark],
            results_dir=tmp_path,
            summary_path=summary_path,
        )
        validate_summary(summary)
        assert summary["schema"] == SUMMARY_SCHEMA
        assert summary["tier"] == "smoke"
        assert summary["benchmarks"]["toy"]["results"] == 1
        reloaded = json.loads(summary_path.read_text())
        assert reloaded["results"] == summary["results"]

    def test_profile_writes_pstats_artifact(self, toy_benchmark, tmp_path):
        import pstats

        report = run_benchmark(
            toy_benchmark, "full", results_dir=tmp_path, profile=True
        )
        assert report.outcome.ok  # profiling must not change the outcome
        stats = pstats.Stats(str(tmp_path / "toy.prof"))
        assert stats.total_calls > 0
        run_benchmark(toy_benchmark, "smoke", results_dir=tmp_path,
                      profile=True)
        assert (tmp_path / "toy.smoke.prof").exists()

    def test_profile_in_memory_run_skips_artifact(self, toy_benchmark):
        report = run_benchmark(
            toy_benchmark, "full", results_dir=None, profile=True
        )
        assert report.outcome.ok

    def test_validate_summary_rejects_junk(self):
        with pytest.raises(ValueError):
            validate_summary([])
        with pytest.raises(ValueError):
            validate_summary({"schema": SUMMARY_SCHEMA, "tier": "smoke",
                              "benchmarks": {}, "results": [{"bad": 1}]})


def _summary(value=10.0, *, tier="smoke", metric="latency",
             direction="lower", gated=True, benchmark="toy"):
    return {
        "schema": SUMMARY_SCHEMA,
        "tier": tier,
        "python": "3",
        "git": {},
        "elapsed_s": 0.0,
        "benchmarks": {
            benchmark: {"tier": tier, "elapsed_s": 0.0, "failures": [],
                        "results": 1},
        },
        "results": [
            {
                "schema": RESULT_SCHEMA,
                "benchmark": benchmark,
                "metric": metric,
                "value": value,
                "unit": "beats",
                "scenario": {"n": 4},
                "direction": direction,
                "gated": gated,
            }
        ],
    }


class TestGateLogic:
    def test_parse_tolerance(self):
        assert parse_tolerance("20%") == pytest.approx(0.2)
        assert parse_tolerance("0.05") == pytest.approx(0.05)
        assert parse_tolerance(0.3) == pytest.approx(0.3)
        for bad in ("fast", "-1", "1200%"):
            with pytest.raises(ConfigurationError):
                parse_tolerance(bad)

    def test_delta_directions(self):
        worse_lower = Delta("k", old=10, new=13, unit="b", direction="lower")
        assert worse_lower.regressed(0.2) and not worse_lower.regressed(0.4)
        better_lower = Delta("k", old=10, new=8, unit="b", direction="lower")
        assert not better_lower.regressed(0.0)
        worse_higher = Delta("k", old=10, new=7, unit="b", direction="higher")
        assert worse_higher.regressed(0.2) and not worse_higher.regressed(0.5)

    def test_delta_zero_baseline_is_absolute(self):
        stall = Delta("k", old=0.0, new=0.5, unit="f", direction="lower")
        assert stall.regressed(0.2) and not stall.regressed(0.6)
        assert not Delta("k", old=0.0, new=0.0, unit="f",
                         direction="lower").regressed(0.2)

    def test_update_then_gate_pass_and_regress(self):
        baselines = update_baselines(empty_baselines(), _summary(10.0))
        ok = compare_to_baselines(_summary(11.0), baselines)
        assert ok.ok and ok.checked == 1
        bad = compare_to_baselines(_summary(13.0), baselines)
        assert not bad.ok and len(bad.regressions) == 1

    def test_missing_metric_fails_only_for_benchmarks_that_ran(self):
        baselines = update_baselines(empty_baselines(), _summary(10.0))
        renamed = _summary(10.0, metric="other_latency")
        report = compare_to_baselines(renamed, baselines)
        assert report.missing == ("toy/latency{n=4}",)
        assert not report.ok
        other_bench = _summary(10.0, benchmark="unrelated")
        assert compare_to_baselines(other_bench, baselines).ok

    def test_ungated_results_are_ignored(self):
        baselines = update_baselines(
            empty_baselines(), _summary(10.0, gated=False)
        )
        assert baselines["tiers"]["smoke"] == {}
        report = compare_to_baselines(_summary(99.0, gated=False), baselines)
        assert report.ok and report.checked == 0

    def test_update_preserves_other_tiers_and_benchmarks(self):
        baselines = update_baselines(empty_baselines(), _summary(10.0))
        baselines = update_baselines(
            baselines, _summary(20.0, tier="full")
        )
        baselines = update_baselines(
            baselines, _summary(5.0, benchmark="other")
        )
        smoke = baselines["tiers"]["smoke"]
        assert smoke["toy/latency{n=4}"]["value"] == 10.0
        assert smoke["other/latency{n=4}"]["value"] == 5.0
        assert baselines["tiers"]["full"]["toy/latency{n=4}"]["value"] == 20.0
        # Re-running a benchmark prunes its vanished metrics.
        baselines = update_baselines(
            baselines, _summary(9.0, metric="other_latency")
        )
        assert "toy/latency{n=4}" not in baselines["tiers"]["smoke"]
        assert "toy/other_latency{n=4}" in baselines["tiers"]["smoke"]

    def test_compare_summaries(self):
        report = compare_summaries(_summary(10.0), _summary(13.0))
        assert len(report.regressions) == 1
        assert compare_summaries(_summary(10.0), _summary(10.5)).ok

    def test_compare_rejects_cross_tier_summaries(self):
        with pytest.raises(ConfigurationError, match="tier"):
            compare_summaries(_summary(10.0, tier="full"), _summary(10.0))


class TestBenchCLI:
    """Exit-code contract of ``python -m repro bench gate/compare/run``."""

    def _write(self, path, payload):
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        return str(path)

    def test_gate_exit_codes_pass_regress_missing_baseline(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        good = self._write(tmp_path / "good.json", _summary(10.0))
        baseline = tmp_path / "baselines.json"
        # missing baseline file -> exit 2
        assert main(["bench", "gate", "--summary", good,
                     "--baseline", str(baseline)]) == 2
        assert "does not exist" in capsys.readouterr().err
        # seed it -> exit 0
        assert main(["bench", "gate", "--summary", good,
                     "--baseline", str(baseline), "--update-baseline"]) == 0
        # unchanged run passes -> exit 0
        assert main(["bench", "gate", "--summary", good,
                     "--baseline", str(baseline)]) == 0
        assert "-> ok" in capsys.readouterr().out
        # 30% degradation beyond the 20% tolerance -> exit 1
        regressed = self._write(tmp_path / "bad.json", _summary(13.0))
        assert main(["bench", "gate", "--summary", regressed,
                     "--baseline", str(baseline)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # ...unless the tolerance is widened
        assert main(["bench", "gate", "--summary", regressed,
                     "--baseline", str(baseline), "--tolerance", "50%"]) == 0
        # a vanished baselined metric -> exit 1
        renamed = self._write(
            tmp_path / "renamed.json", _summary(10.0, metric="other")
        )
        assert main(["bench", "gate", "--summary", renamed,
                     "--baseline", str(baseline)]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_gate_bad_tolerance_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        good = self._write(tmp_path / "good.json", _summary(10.0))
        code = main(["bench", "gate", "--summary", good,
                     "--baseline", str(tmp_path / "b.json"),
                     "--tolerance", "fast"])
        assert code == 2
        assert "tolerance" in capsys.readouterr().err

    def test_compare_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        old = self._write(tmp_path / "old.json", _summary(10.0))
        same = self._write(tmp_path / "same.json", _summary(10.5))
        worse = self._write(tmp_path / "worse.json", _summary(16.0))
        assert main(["bench", "compare", old, same]) == 0
        assert main(["bench", "compare", old, worse]) == 1
        out = capsys.readouterr().out
        assert "1 regressed" in out
        assert main(["bench", "compare", old, worse,
                     "--tolerance", "100%"]) == 0

    def test_compare_cross_tier_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        smoke = self._write(tmp_path / "smoke.json", _summary(10.0))
        full = self._write(
            tmp_path / "full.json", _summary(10.0, tier="full")
        )
        assert main(["bench", "compare", full, smoke]) == 2
        assert "tier" in capsys.readouterr().err

    def test_gate_renders_moves_off_zero_baselines(self, tmp_path, capsys):
        from repro.cli import main

        zero = self._write(
            tmp_path / "zero.json", _summary(0.0, direction="higher")
        )
        baseline = tmp_path / "baselines.json"
        assert main(["bench", "gate", "--summary", zero,
                     "--baseline", str(baseline), "--update-baseline"]) == 0
        risen = self._write(
            tmp_path / "risen.json", _summary(1.0, direction="higher")
        )
        assert main(["bench", "gate", "--summary", risen,
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "better, from zero" in out
        assert "inf" not in out

    def test_run_cli_with_toy_benchmark(self, toy_benchmark, tmp_path, capsys):
        from repro.cli import main

        summary_path = tmp_path / "summary.json"
        code = main([
            "bench", "run", "--only", "toy", "--tier", "smoke",
            "--results-dir", str(tmp_path), "--summary", str(summary_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "toy" in out and "ok" in out
        summary = json.loads(summary_path.read_text())
        validate_summary(summary)
        assert summary["tier"] == "smoke"
        assert (tmp_path / "toy.smoke.json").exists()

    def test_run_cli_reports_qualitative_failures(self, tmp_path, capsys):
        from repro.cli import main

        bench = register(
            Benchmark(
                name="toy-failing",
                tier="smoke",
                runner=_toy_runner,
                params={"value": 1.0, "fail": True},
            )
        )
        try:
            code = main([
                "bench", "run", "--only", "toy-failing",
                "--results-dir", str(tmp_path),
                "--summary", str(tmp_path / "s.json"),
            ])
        finally:
            REGISTRY.pop(bench.name, None)
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL: toy-failing: toy check failed" in out

    def test_run_cli_unknown_benchmark_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "bench", "run", "--only", "no-such-bench",
            "--results-dir", str(tmp_path),
            "--summary", str(tmp_path / "s.json"),
        ])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestCheckedInArtifacts:
    """The repo's pinned perf trajectory stays coherent."""

    def test_baselines_file_is_valid_and_covers_tiers(self):
        from repro.bench.gate import load_baselines

        baselines = load_baselines(BENCH_DIR / "baselines.json")
        assert set(baselines["tiers"]) == {"smoke", "full", "nightly"}
        smoke_benchmarks = {
            key.split("/", 1)[0]
            for key in baselines["tiers"]["smoke"]
        }
        # engines, runtime_throughput and pulse_precision contribute
        # gated trajectory / trace digests (simulation-deterministic, so
        # pinnable at every tier) on top of their ungated wall-clock rows.
        assert smoke_benchmarks == {
            "engines", "link_conditions", "protocol_comparison",
            "pulse_precision", "runtime_throughput",
            "stabilization_under_churn",
        }
        for tier in ("smoke", "full", "nightly"):
            engine_keys = [
                key for key in baselines["tiers"][tier]
                if key.startswith("engines/trajectory_match")
            ]
            assert len(engine_keys) == 6  # 3 engines x 2 digest cases

    def test_checked_in_summary_is_schema_valid(self):
        # The checked-in summary is a full-tier run, but any `bench run`
        # legitimately rewrites it — so pin coherence, not the tier: the
        # summary must cover exactly its own tier's selection.
        from repro.bench import load_summary

        summary = load_summary(REPO_ROOT / "BENCH_summary.json")
        expected = {b.name for b in select_tier(summary["tier"])}
        assert set(summary["benchmarks"]) <= expected
        assert set(summary["benchmarks"]) or summary["results"] == []

    def test_per_benchmark_reports_are_schema_valid(self):
        results_dir = BENCH_DIR / "results"
        reports = sorted(results_dir.glob("*.json"))
        named = {p.stem for p in reports if "." not in p.stem}
        assert {b.name for b in all_benchmarks()} <= named
        for path in reports:
            record = json.loads(path.read_text(encoding="utf-8"))
            for result in record["results"]:
                validate_result_record(result)
