"""Documentation health: snippets execute, links resolve (tier-1 copy).

The CI docs job runs ``tools/check_docs.py`` standalone; running the same
checks here keeps them enforced by the local tier-1 suite too, so a
README edit cannot rot between pushes.
"""

from __future__ import annotations

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_markdown_discovered():
    names = {path.name for path in check_docs.markdown_files()}
    assert {"README.md", "ARCHITECTURE.md", "protocol.md"} <= names


def test_readme_has_executable_snippets():
    blocks = check_docs.python_blocks(REPO_ROOT / "README.md")
    assert len(blocks) >= 2, "README quickstart must show runnable Python"


def test_relative_links_resolve():
    assert check_docs.check_links(check_docs.markdown_files()) == []


def test_python_snippets_execute():
    assert check_docs.check_snippets(check_docs.markdown_files()) == []
