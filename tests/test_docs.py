"""Documentation health: snippets execute, links resolve (tier-1 copy).

The CI docs job runs ``tools/check_docs.py`` standalone; running the same
checks here keeps them enforced by the local tier-1 suite too, so a
README edit cannot rot between pushes.
"""

from __future__ import annotations

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_markdown_discovered():
    names = {path.name for path in check_docs.markdown_files()}
    assert {"README.md", "ARCHITECTURE.md", "protocol.md"} <= names


def test_readme_has_executable_snippets():
    blocks = check_docs.python_blocks(REPO_ROOT / "README.md")
    assert len(blocks) >= 2, "README quickstart must show runnable Python"


def test_relative_links_resolve():
    assert check_docs.check_links(check_docs.markdown_files()) == []


def test_heading_anchors_github_slugs():
    anchors = check_docs.heading_anchors(REPO_ROOT / "ARCHITECTURE.md")
    assert "the-protocol-seam-srcreprocoreprotocolpy" in anchors
    assert "runtime-srcreproruntime" in anchors


def test_broken_anchor_detected(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "# Title\n\n[ok](#title) [bad](#nope) [x](other.md#missing)\n",
        encoding="utf-8",
    )
    (tmp_path / "other.md").write_text("# Other\n", encoding="utf-8")
    failures = check_docs.check_links([page])
    assert len(failures) == 2
    assert any("#nope" in failure for failure in failures)
    assert any("other.md#missing" in failure for failure in failures)


def test_duplicate_headings_numbered(tmp_path):
    page = tmp_path / "dup.md"
    page.write_text("# Same\n\n# Same\n", encoding="utf-8")
    assert {"same", "same-1"} <= check_docs.heading_anchors(page)


def test_underscores_survive_slugs(tmp_path):
    """github-slugger keeps underscores: `run_campaign` anchors with one."""
    page = tmp_path / "api.md"
    page.write_text(
        "# The `run_campaign` API\n\n[ok](#the-run_campaign-api)\n",
        encoding="utf-8",
    )
    assert check_docs.check_links([page]) == []


def test_python_snippets_execute():
    assert check_docs.check_snippets(check_docs.markdown_files()) == []
