"""Campaign subsystem: picklable specs, parallel sweeps, determinism."""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.campaign import (
    ADVERSARY_REGISTRY,
    PROTOCOL_REGISTRY,
    ScenarioSpec,
    campaign_to_json,
    iter_campaign,
    run_campaign,
    scenario_grid,
    single_scenario_sweep,
)
from repro.analysis.experiments import run_sweep
from repro.cli import main
from repro.errors import ConfigurationError

FAST_SPEC = ScenarioSpec(
    n=4, f=1, k=6, max_beats=150, coin_p0=0.4, coin_p1=0.4, coin_rounds=2
)


class TestScenarioSpec:
    def test_picklable(self):
        spec = FAST_SPEC
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_build_config_runs(self):
        config = FAST_SPEC.build_config()
        assert config.n == 4 and config.engine == "fast"
        root = config.protocol_factory(0)
        assert root.modulus == 6

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(n=4, f=1, k=6, protocol="quantum").validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(n=4, f=1, k=6, coin="quantum").build_config()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(n=4, f=1, k=6, adversary="nobody").validate()

    def test_label_mentions_grid_point(self):
        label = ScenarioSpec(n=7, f=2, k=8, adversary="crash").label
        assert "n=7" in label and "k=8" in label and "crash" in label

    def test_registries_cover_cli_surface(self):
        assert "none" in ADVERSARY_REGISTRY
        assert "clock-sync" in PROTOCOL_REGISTRY

    def test_baseline_protocols_build(self):
        for protocol in ("deterministic", "dolev-welch"):
            spec = ScenarioSpec(n=4, f=1, k=6, protocol=protocol)
            root = spec.build_config().protocol_factory(0)
            assert root.modulus == 6


class TestScenarioGrid:
    def test_derives_optimal_f(self):
        specs = scenario_grid([4, 7, 10], ks=[8])
        assert [(s.n, s.f) for s in specs] == [(4, 1), (7, 2), (10, 3)]

    def test_full_matrix(self):
        specs = scenario_grid([4, 7], ks=[4, 8], adversaries=["none", "crash"])
        assert len(specs) == 8

    def test_pinned_f(self):
        specs = scenario_grid([6, 9], fs=[2, 3], ks=[2])
        assert [(s.n, s.f) for s in specs] == [(6, 2), (9, 3)]

    def test_f_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_grid([4, 7], fs=[1])

    def test_one_shot_iterables_fully_expanded(self):
        specs = scenario_grid(
            iter([4, 7]), ks=iter([4, 8]), adversaries=iter(["none", "crash"])
        )
        assert len(specs) == 8

    def test_common_kwargs_forwarded(self):
        (spec,) = scenario_grid([4], ks=[6], max_beats=99, engine="reference")
        assert spec.max_beats == 99 and spec.engine == "reference"


class TestRunCampaign:
    def test_matches_run_sweep(self):
        sweep = run_sweep(FAST_SPEC.build_config(), seeds=range(3))
        (entry,) = run_campaign([FAST_SPEC], seeds=range(3), workers=1)
        assert entry.sweep.results == sweep.results

    def test_worker_count_does_not_change_results(self):
        serial = run_campaign([FAST_SPEC], seeds=range(4), workers=1)
        parallel = run_campaign([FAST_SPEC], seeds=range(4), workers=2)
        assert serial[0].sweep.results == parallel[0].sweep.results

    def test_entries_in_spec_order_with_streaming_iter(self):
        specs = scenario_grid([4, 7], ks=[6], max_beats=150)
        entries = run_campaign(specs, seeds=range(2), workers=2)
        assert [entry.index for entry in entries] == [0, 1]
        assert [entry.spec.n for entry in entries] == [4, 7]
        streamed = list(iter_campaign(specs, seeds=range(2), workers=1))
        assert {entry.spec.n for entry in streamed} == {4, 7}

    def test_early_exit_saves_beats(self):
        (entry,) = run_campaign([FAST_SPEC], seeds=range(3), workers=1)
        mean_beats = sum(r.beats_run for r in entry.sweep.results) / 3
        assert entry.sweep.success_rate == 1.0
        assert mean_beats < FAST_SPEC.max_beats / 2

    def test_progress_callback(self):
        calls = []
        run_campaign(
            [FAST_SPEC],
            seeds=range(2),
            workers=1,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 2), (2, 2)]

    def test_empty_campaign(self):
        assert run_campaign([], seeds=range(3)) == []
        assert run_campaign([FAST_SPEC], seeds=[]) == []

    def test_duplicate_seeds_supported(self):
        for workers in (1, 2):
            (entry,) = run_campaign(
                [FAST_SPEC], seeds=[0, 0, 1], workers=workers
            )
            results = entry.sweep.results
            assert len(results) == 3
            assert results[0] == results[1]  # deterministic repeat
            assert [r.seed for r in results] == [0, 0, 1]

    def test_out_of_range_scramble_beats_rejected(self):
        spec = ScenarioSpec(n=4, f=1, k=6, max_beats=100, scramble_beats=(200,))
        with pytest.raises(ConfigurationError):
            spec.validate()
        with pytest.raises(ConfigurationError):
            list(iter_campaign([spec], seeds=range(2)))

    def test_single_scenario_sweep(self):
        sweep = single_scenario_sweep(FAST_SPEC, seeds=range(2), workers=1)
        assert len(sweep.results) == 2

    def test_fault_schedule_measures_recovery(self):
        spec = ScenarioSpec(
            n=4, f=1, k=6, max_beats=200, scramble_beats=(30,),
            coin_p0=0.4, coin_p1=0.4, coin_rounds=2,
        )
        (entry,) = run_campaign([spec], seeds=range(2), workers=1)
        for result in entry.sweep.results:
            # Convergence is measured from the scheduled mid-run fault.
            assert result.converged
            assert result.converged_beat >= 30
            assert result.beats_run > 30


class TestCampaignJson:
    def test_records_shape(self):
        entries = run_campaign([FAST_SPEC], seeds=range(2), workers=1)
        (record,) = campaign_to_json(entries)
        assert record["trials"] == 2
        assert record["success_rate"] == 1.0
        assert record["spec"]["n"] == 4
        assert len(record["latencies"]) == 2
        assert record["mean_beats_run"] < FAST_SPEC.max_beats

    def test_orders_by_index(self):
        specs = scenario_grid([4, 7], ks=[6], max_beats=150)
        entries = run_campaign(specs, seeds=range(1), workers=1)
        records = campaign_to_json(reversed(entries))
        assert [r["spec"]["n"] for r in records] == [4, 7]


class TestCampaignCli:
    def test_campaign_command_runs(self, capsys):
        code = main(
            ["campaign", "--n", "4", "--k", "6", "--seeds", "2",
             "--beats", "150", "--workers", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign: 1 scenarios x 2 seeds" in out
        assert "success" in out

    def test_campaign_json_output(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        code = main(
            ["campaign", "--n", "4", "--k", "6", "--seeds", "2",
             "--beats", "150", "--workers", "1", "--json", str(path)]
        )
        capsys.readouterr()
        assert code == 0
        assert path.exists()

    def test_campaign_f_mismatch_errors(self, capsys):
        code = main(
            ["campaign", "--n", "4", "7", "--f", "1", "--seeds", "1",
             "--workers", "1"]
        )
        capsys.readouterr()
        assert code == 2

    def test_campaign_bad_fault_schedule_errors(self, capsys):
        code = main(
            ["campaign", "--n", "4", "--seeds", "1", "--beats", "100",
             "--scramble-beats", "900", "--workers", "1"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "scramble_beats" in err

    def test_campaign_deterministic(self, capsys):
        argv = ["campaign", "--n", "4", "--k", "6", "--seeds", "2",
                "--beats", "150", "--workers", "1"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        # Strip the wall-clock line; everything measured must match.
        strip = lambda text: [
            line for line in text.splitlines() if "trials in" not in line
        ]
        assert strip(first) == strip(second)
