"""Unit and property tests for univariate polynomials over GF(p)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coin.field import PrimeField
from repro.coin.polynomial import (
    evaluate,
    interpolate,
    normalize,
    poly_add,
    poly_divmod,
    poly_mul,
    random_polynomial,
)
from repro.errors import ConfigurationError

FIELD = PrimeField(97)

coeff_lists = st.lists(st.integers(min_value=0, max_value=96), max_size=6)


class TestEvaluate:
    def test_constant(self):
        assert evaluate(FIELD, (42,), 13) == 42

    def test_zero_polynomial(self):
        assert evaluate(FIELD, (), 5) == 0

    def test_known_quadratic(self):
        # 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38
        assert evaluate(FIELD, (3, 2, 1), 5) == 38

    def test_reduction_mod_p(self):
        assert evaluate(FIELD, (96, 96), 96) == (96 + 96 * 96) % 97


class TestNormalize:
    def test_strips_trailing_zeros(self):
        assert normalize([1, 2, 0, 0]) == (1, 2)

    def test_zero_is_empty(self):
        assert normalize([0, 0]) == ()

    def test_keeps_interior_zeros(self):
        assert normalize([0, 0, 5]) == (0, 0, 5)


class TestRandomPolynomial:
    def test_pins_constant_term(self):
        rng = random.Random(3)
        poly = random_polynomial(FIELD, 4, rng, constant_term=17)
        assert poly[0] == 17
        assert len(poly) == 5

    def test_negative_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            random_polynomial(FIELD, -1, random.Random(0))

    def test_distribution_covers_field(self):
        rng = random.Random(4)
        seen = {random_polynomial(FIELD, 0, rng)[0] for _ in range(400)}
        assert len(seen) > 60


class TestInterpolate:
    def test_line_through_two_points(self):
        poly = interpolate(FIELD, [(0, 5), (1, 7)])
        assert poly == (5, 2)  # 5 + 2x

    def test_rejects_duplicate_x(self):
        with pytest.raises(ConfigurationError):
            interpolate(FIELD, [(1, 2), (1, 3)])

    @given(coeff_lists, st.integers(min_value=0, max_value=10))
    def test_roundtrip(self, coeffs, seed):
        poly = normalize(coeffs)
        degree = max(len(poly) - 1, 0)
        xs = list(range(degree + 1))
        points = [(x, evaluate(FIELD, poly, x)) for x in xs]
        assert interpolate(FIELD, points) == poly

    def test_overdetermined_consistent_points(self):
        rng = random.Random(9)
        poly = random_polynomial(FIELD, 3, rng)
        points = [(x, evaluate(FIELD, poly, x)) for x in range(10)]
        assert interpolate(FIELD, points[:4]) == normalize(poly)


class TestArithmetic:
    @given(coeff_lists, coeff_lists)
    def test_add_pointwise(self, a, b):
        total = poly_add(FIELD, a, b)
        for x in range(5):
            assert evaluate(FIELD, total, x) == FIELD.add(
                evaluate(FIELD, a, x), evaluate(FIELD, b, x)
            )

    @given(coeff_lists, coeff_lists)
    def test_mul_pointwise(self, a, b):
        product = poly_mul(FIELD, a, b)
        for x in range(5):
            assert evaluate(FIELD, product, x) == FIELD.mul(
                evaluate(FIELD, a, x), evaluate(FIELD, b, x)
            )

    def test_mul_by_zero(self):
        assert poly_mul(FIELD, (1, 2), ()) == ()

    @given(coeff_lists, coeff_lists)
    def test_divmod_identity(self, a, b):
        denominator = normalize(b)
        if not denominator:
            return  # division by zero handled in a dedicated test
        quotient, remainder = poly_divmod(FIELD, a, denominator)
        recombined = poly_add(
            FIELD, poly_mul(FIELD, quotient, denominator), remainder
        )
        assert recombined == normalize(a)
        assert len(remainder) < len(denominator)

    def test_divmod_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod(FIELD, (1, 2, 3), (0,))

    def test_exact_division(self):
        product = poly_mul(FIELD, (1, 1), (3, 0, 2))
        quotient, remainder = poly_divmod(FIELD, product, (1, 1))
        assert remainder == ()
        assert quotient == (3, 0, 2)
