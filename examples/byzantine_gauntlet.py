#!/usr/bin/env python3
"""Run ss-Byz-Clock-Sync through a gauntlet of Byzantine strategies.

Each adversary fully controls f = ⌊(n-1)/3⌋ nodes, sees every broadcast,
rushes (reads honest messages before committing its own), and in the
split-world case even dictates the coin's outputs in the divergent event.
Convergence must stay expected-constant against all of them (Theorem 4).

Run:  python examples/byzantine_gauntlet.py
"""

from __future__ import annotations

from repro.adversary import (
    CrashAdversary,
    EquivocatorAdversary,
    RandomNoiseAdversary,
    SplitWorldAdversary,
)
from repro.analysis import TrialConfig, render_table, run_sweep, summarize
from repro.coin.oracle import OracleCoin
from repro.core.clock_sync import SSByzClockSync

GAUNTLET = [
    ("fault-free", lambda: None),
    ("crash (silent)", CrashAdversary),
    ("random noise", RandomNoiseAdversary),
    ("equivocator", EquivocatorAdversary),
    ("split-world + coin control", SplitWorldAdversary),
]


def main() -> None:
    n, f, k = 7, 2, 32
    seeds = range(10)
    rows = []
    for name, adversary_factory in GAUNTLET:
        config = TrialConfig(
            n=n,
            f=f,
            k=k,
            protocol_factory=lambda i: SSByzClockSync(
                k, lambda: OracleCoin(p0=0.35, p1=0.35, rounds=3)
            ),
            adversary_factory=adversary_factory,
            max_beats=300,
        )
        sweep = run_sweep(config, seeds)
        summary = summarize([float(v) for v in sweep.latencies])
        rows.append(
            [
                name,
                f"{sweep.success_rate * 100:.0f}%",
                f"{summary.mean:.1f}",
                f"{summary.median:.0f}",
                f"{summary.maximum:.0f}",
            ]
        )
    print(f"ss-Byz-Clock-Sync under attack  (n={n}, f={f}, k={k}, {len(seeds)} seeds)\n")
    print(
        render_table(
            ["adversary", "converged", "mean beats", "median", "worst"], rows
        )
    )
    print(
        "\nAll rows stay within a small constant number of beats — the\n"
        "adversary can delay merging only while the common coin disagrees\n"
        "with the standing clock value, which happens with constant\n"
        "probability per beat (Lemmas 4 and 8)."
    )


if __name__ == "__main__":
    main()
