"""A minimal cluster spec file: one multi-process TCP experiment.

This file doubles as the ``repro cluster run`` input format reference —
the orchestrator imports it and reads the module-level ``experiments``
list — and as a runnable example (``python examples/cluster_smoke.py``)
that launches the cluster directly through the library API.

The experiment is deliberately small: the n=4, f=1 clock-sync system on
the binary wire codec, split across two OS processes that talk real TCP
loopback sockets.  The interesting part is what *doesn't* change: the
cluster's per-beat trajectory is the same trajectory a single-process
run — or the lock-step simulator — produces for the same seed, because
every worker replays the identical seed discipline and the round barrier
normalizes arrival order away.
"""

from repro.runtime import ClusterSpec

experiments = [
    ClusterSpec(
        name="smoke-n4",
        n=4,
        f=1,
        k=6,
        beats=12,
        processes=2,
        codec="binary",
    ),
]


def main() -> None:
    from repro.runtime import run_cluster

    for spec in experiments:
        result = run_cluster(spec)
        print(
            f"{spec.name}: n={spec.n} f={spec.f} k={spec.k} "
            f"codec={spec.codec} processes={spec.processes}"
        )
        for beat, values in enumerate(result.history):
            print(f"  beat {beat:>3} | " + " ".join(f"{v:>3}" for v in values))
        verdict = (
            f"converged at beat {result.converged_beat}"
            if result.converged else "did not converge"
        )
        print(
            f"  {verdict}; {result.messages_sent} messages in "
            f"{result.frames_sent} wire frames across "
            f"{result.processes} processes"
        )


if __name__ == "__main__":
    # Accepts and ignores --smoke: the run already is one.
    main()
