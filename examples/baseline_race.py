#!/usr/bin/env python3
"""Table 1, live: race the three algorithm families across system sizes.

For each n the three families solve the same k-Clock problem from fully
scrambled memory:

* Dolev-Welch-style local-coin randomization — expected exponential;
* deterministic cyclic Byzantine agreement — O(f) beats, every seed;
* this paper's ss-Byz-Clock-Sync — expected O(1), flat in n.

Run:  python examples/baseline_race.py
"""

from __future__ import annotations

from repro.analysis import (
    TrialConfig,
    render_table,
    run_sweep,
    standard_families,
)

SIZES = [(4, 1), (7, 2), (10, 3)]
K = 4
SEEDS = range(6)
MAX_BEATS = 400


def measure(family: str, n: int, f: int) -> str:
    factory = standard_families(n, f, K)[family]
    config = TrialConfig(
        n=n,
        f=f,
        k=K,
        protocol_factory=factory,
        max_beats=MAX_BEATS,
    )
    sweep = run_sweep(config, SEEDS)
    if not sweep.latencies:
        return f">{MAX_BEATS}"
    mean = sum(sweep.latencies) / len(sweep.latencies)
    suffix = "" if sweep.success_rate == 1.0 else f" ({sweep.failure_count} DNF)"
    return f"{mean:.1f}{suffix}"


def main() -> None:
    rows = []
    for n, f in SIZES:
        rows.append(
            [
                f"n={n}, f={f}",
                measure("dolev-welch", n, f),
                measure("deterministic", n, f),
                measure("current", n, f),
            ]
        )
    print(f"mean convergence beats, k={K}, {len(list(SEEDS))} seeds each "
          f"(DNF = did not finish in {MAX_BEATS} beats)\n")
    print(
        render_table(
            [
                "system",
                "[10]-style local coin",
                "[15]/[7]-style deterministic",
                "this paper",
            ],
            rows,
        )
    )
    print(
        "\nShapes to notice: the local-coin column blows up with n - f, the\n"
        "deterministic column grows linearly with f, and this paper's\n"
        "column stays flat — Table 1 of the paper, measured."
    )


if __name__ == "__main__":
    main()
