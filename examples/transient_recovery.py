#!/usr/bin/env python3
"""Self-stabilization live: memory storms and phantom messages mid-flight.

A day-length digital clock (k = 86400 seconds) runs among 7 nodes with two
Byzantine equivocators.  At beat 60 every correct node's memory is
scrambled (a transient fault storm), and a burst of 300 phantom messages —
stale traffic claiming arbitrary senders — is dumped into the network.  The
protocol must re-converge on its own, which is what "self-stabilizing"
means (Definition 3.2 from any state).

Run:  python examples/transient_recovery.py
"""

from __future__ import annotations

from repro.adversary import EquivocatorAdversary
from repro.analysis import ClockConvergenceMonitor
from repro.coin.oracle import OracleCoin
from repro.core.clock_sync import SSByzClockSync
from repro.faults import inject_phantom_storm, scramble_now
from repro.net.simulator import Simulation

STORM_BEAT = 60


def fmt(values: tuple[int | None, ...]) -> str:
    return " ".join(
        f"{v:>5}" if v is not None else "    ⊥" for v in values
    )


def main() -> None:
    n, f, k = 7, 2, 86_400
    sim = Simulation(
        n,
        f,
        lambda i: SSByzClockSync(k, lambda: OracleCoin(p0=0.35, p1=0.35, rounds=3)),
        adversary=EquivocatorAdversary(),
        seed=7,
    )
    monitor = ClockConvergenceMonitor(k=k)
    sim.add_monitor(monitor)

    scramble_now(sim)  # worst-case start
    print(f"day clock (k={k}) with n={n}, f={f}, equivocating adversary\n")
    for beat in range(STORM_BEAT):
        sim.run_beat()
        if beat < 12 or beat % 20 == 19:
            print(f"  beat {beat:>3} | {fmt(monitor.history[-1])}")
    first = monitor.convergence_beat(until_beat=STORM_BEAT)
    print(f"\n>>> first convergence at beat {first}")

    print(f"\n>>> beat {STORM_BEAT}: scrambling every correct node's memory")
    print(">>> and injecting 300 phantom messages\n")
    scramble_now(sim)
    inject_phantom_storm(
        sim, ["root", "root/coin", "root/A/A1", "root/A/A2"], count=300
    )
    for beat in range(STORM_BEAT, STORM_BEAT + 20):
        sim.run_beat()
        print(f"  beat {beat:>3} | {fmt(monitor.history[-1])}")
    sim.run(60)

    second = monitor.convergence_beat(from_beat=STORM_BEAT + 1)
    print(f"\n>>> re-converged at beat {second} "
          f"({second - STORM_BEAT} beats after the storm)")
    if first is None or second is None:
        raise SystemExit("unexpected: no convergence — try another seed")
    print(
        "\nRecovery takes the same expected-constant number of beats as the\n"
        "original convergence: the algorithm has no distinguished initial\n"
        "state to rely on, so every state is a state it can start from."
    )


if __name__ == "__main__":
    main()
