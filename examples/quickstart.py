#!/usr/bin/env python3
"""Quickstart: synchronize a 60-second digital clock among 7 nodes.

Seven nodes, two of them Byzantine-capable (f = 2), start from completely
scrambled memory and must agree on a wall-clock-style counter mod 60 that
all of them advance by one every beat — the k-Clock problem the paper
solves in expected constant time.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

import repro


def main() -> None:
    # The CI example sweep passes --smoke to every script; it is not a
    # seed (negative seeds like -5 are).  Ignore exactly that flag.
    args = [arg for arg in sys.argv[1:] if arg != "--smoke"]
    seed = int(args[0]) if args else 2026
    n, f, k = 7, 2, 60
    result = repro.synchronize(n=n, f=f, k=k, seed=seed, max_beats=60)

    print(f"ss-Byz-Clock-Sync  n={n} f={f} k={k} seed={seed}")
    print("correct nodes' clocks per beat (from scrambled memory):\n")
    for beat, values in enumerate(result.history[:20]):
        cells = " ".join(f"{v:>3}" if v is not None else "  ⊥" for v in values)
        marker = ""
        if result.converged_beat is not None and beat == result.converged_beat:
            marker = "   <- clock-synched from here on (Definition 3.2)"
        print(f"  beat {beat:>3} | {cells}{marker}")

    print()
    if result.converged_beat is None:
        print("did not converge (raise max_beats — this is vanishingly rare)")
        raise SystemExit(1)
    print(
        f"converged at beat {result.converged_beat} — expected O(1), "
        f"independent of n and k (Theorem 4)."
    )
    print(f"total messages: {result.total_messages}")


if __name__ == "__main__":
    main()
