#!/usr/bin/env python3
"""The protocol shootout: every registered protocol, one k-Clock problem.

All five registered protocols (``python -m repro protocols``) race from
fully scrambled memory at n=16, f=5 — the paper's expected-O(1)
ss-Byz-Clock-Sync against the deterministic O(f) cyclic-agreement clocks
(turpin-coan with its Table 1 alias, the shorter-cycle bitwise
phase-king) and the expected-exponential local-coin Dolev-Welch row.
The table prints mean stabilization beats and message traffic per
protocol: Table 1 of the paper, measured through one seam.

Run:  python examples/protocol_shootout.py        (add --smoke for a
      CI-sized n=7, f=2 grid)
"""

from __future__ import annotations

import sys

from repro.analysis import TrialConfig, render_table, run_sweep
from repro.core.protocol import PROTOCOLS

K = 8
SMOKE = "--smoke" in sys.argv[1:]
N, F = (7, 2) if SMOKE else (16, 5)
SEEDS = range(2) if SMOKE else range(3)
MAX_BEATS = 150 if SMOKE else 300


def measure(name: str) -> list[str]:
    protocol = PROTOCOLS[name]
    config = TrialConfig(
        n=N,
        f=F,
        k=K,
        protocol_factory=protocol.factory(N, F, K),
        max_beats=MAX_BEATS,
    )
    sweep = run_sweep(config, SEEDS)
    if sweep.latencies:
        mean = sum(sweep.latencies) / len(sweep.latencies)
        latency = f"{mean:.1f}"
        if sweep.failure_count:
            latency += f" ({sweep.failure_count} DNF)"
    else:
        latency = f">{MAX_BEATS}"
    bound = protocol.convergence_bound(N, F, K)
    return [
        name,
        protocol.claimed_convergence,
        latency,
        f"<= {bound}" if bound is not None else "-",
        f"{sweep.mean_messages_per_beat:.0f}",
    ]


def main() -> None:
    print(
        f"protocol shootout: n={N}, f={F}, k={K}, "
        f"{len(list(SEEDS))} scrambled-start trials each "
        f"(DNF = did not stabilize in {MAX_BEATS} beats)\n"
    )
    print(
        render_table(
            ["protocol", "claimed", "mean conv. (beats)", "det. bound",
             "msgs/beat"],
            [measure(name) for name in sorted(PROTOCOLS)],
        )
    )
    print(
        "\nShapes to notice: the paper's clock-sync stays flat where the\n"
        "deterministic cyclic clocks pay O(f) beats per recovery —\n"
        "phase-king's 3(f+1)-beat cycle undercuts turpin-coan's\n"
        "2 + 3(f+1) at a ~log2(k) message premium, and deterministic is\n"
        "turpin-coan under its Table 1 name — while the local-coin\n"
        "dolev-welch row stops converging at all once n - f is large.\n"
        "Reproduce any row: python -m repro run --protocol <name>."
    )


if __name__ == "__main__":
    main()
