#!/usr/bin/env python3
"""The self-stabilizing coin: one common random bit per beat, under attack.

Runs the full Feldman-Micali-style stack — Shamir rows from symmetric
bivariate polynomials, cross-point exchange, graded votes, error-corrected
recovery — inside the ss-Byz-Coin-Flip pipeline (Fig. 1), while a
round-aware dealer attack misdeals rows, frames honest dealers with bogus
cross points, equivocates votes, and lies in recovery.

Run:  python examples/coin_stream.py
"""

from __future__ import annotations

from repro.adversary import DealerAttackAdversary
from repro.coin import FeldmanMicaliCoin
from repro.core.pipeline import CoinFlipPipeline
from repro.net.simulator import Simulation


def main() -> None:
    n, f = 7, 2
    coin = FeldmanMicaliCoin(n, f)
    print(f"coin: {coin.name}, Δ_A = {coin.rounds} rounds, pipeline depth {coin.rounds}")
    sim = Simulation(
        n,
        f,
        lambda i: CoinFlipPipeline(coin),
        adversary=DealerAttackAdversary(),
        seed=13,
    )

    sim.run(coin.rounds)  # flush arbitrary startup state (Lemma 1)
    print(f"pipeline flushed after Δ_A = {coin.rounds} beats; streaming:\n")

    agreed = ones = 0
    beats = 40
    for beat in range(beats):
        sim.run_beat()
        bits = [sim.nodes[i].root.rand for i in sim.honest_ids]
        common = len(set(bits)) == 1
        agreed += common
        ones += bits[0] if common else 0
        stream = " ".join(str(b) for b in bits)
        note = "" if common else "   <- divergent (adversary-induced)"
        print(f"  beat {beat + coin.rounds:>3} | {stream}{note}")

    print(f"\nagreement rate : {agreed}/{beats} beats")
    print(f"ones among agreed bits: {ones}/{agreed}")
    print(
        "\nEvery agreed beat delivered one uniformly random bit that no f\n"
        "nodes could predict a round earlier — the stream ss-Byz-2-Clock\n"
        "consumes, and (per the paper's §6.1) a tool for randomized\n"
        "self-stabilization well beyond clock synchronization."
    )


if __name__ == "__main__":
    main()
