"""Documentation checker: snippets must run, relative links must resolve.

Two checks over every Markdown file in the repository (README.md, docs/,
ARCHITECTURE.md, ...):

* **Snippet execution** — every fenced code block tagged ``python`` is
  executed in a fresh namespace (with ``src/`` importable).  Blocks
  tagged anything else (``bash``, ``text``, ``pycon``, untagged) are
  skipped, so shell quickstarts and pseudocode stay illustrative while
  Python examples are guaranteed to keep working.
* **Link resolution** — every relative Markdown link target
  (``[text](path)``) must exist on disk, resolved against the linking
  file's directory.  External (``http(s)://``, ``mailto:``) and
  pure-anchor (``#section``) links are ignored; a ``path#anchor``
  target is checked for the path only.

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/check_docs.py

Exit code 0 when docs are healthy; 1 with a per-failure report otherwise.
``tests/test_docs.py`` runs the same checks inside the tier-1 suite.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Directories never scanned for Markdown.
EXCLUDED_DIRS = {".git", ".pytest_cache", "__pycache__", ".hypothesis"}

_FENCE = re.compile(
    r"^```(?P<tag>[^\n`]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
# Inline markdown links [text](target); images ![alt](target) match too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files(root: pathlib.Path = REPO_ROOT) -> list[pathlib.Path]:
    """Every tracked-ish Markdown file under ``root``."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if not EXCLUDED_DIRS.intersection(part for part in path.parts):
            files.append(path)
    return files


def python_blocks(path: pathlib.Path) -> list[tuple[int, str]]:
    """(line number, source) for every ``python``-tagged fenced block."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE.finditer(text):
        if match.group("tag").strip() == "python":
            line = text.count("\n", 0, match.start()) + 2
            blocks.append((line, match.group("body")))
    return blocks


def check_snippets(paths: list[pathlib.Path]) -> list[str]:
    """Execute every Python snippet; return failure descriptions."""
    failures = []
    for path in paths:
        for line, source in python_blocks(path):
            label = f"{path.relative_to(REPO_ROOT)}:{line}"
            try:
                exec(compile(source, label, "exec"), {"__name__": "__docs__"})
            except Exception as error:  # noqa: BLE001 - reported, not raised
                failures.append(f"{label}: snippet raised {error!r}")
    return failures


def relative_links(path: pathlib.Path) -> list[str]:
    """Relative link targets in one file (anchors stripped)."""
    targets = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        targets.append(target.split("#", 1)[0])
    return targets


def check_links(paths: list[pathlib.Path]) -> list[str]:
    """Verify every relative link resolves; return failure descriptions."""
    failures = []
    for path in paths:
        for target in relative_links(path):
            if not (path.parent / target).exists():
                failures.append(
                    f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return failures


def main() -> int:
    paths = markdown_files()
    failures = check_links(paths) + check_snippets(paths)
    snippet_count = sum(len(python_blocks(path)) for path in paths)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(
        f"checked {len(paths)} markdown files, {snippet_count} python "
        f"snippets: {'FAILED' if failures else 'ok'}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
