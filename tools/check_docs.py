"""Documentation checker: snippets must run, relative links must resolve.

Two checks over every Markdown file in the repository (README.md, docs/,
ARCHITECTURE.md, ...):

* **Snippet execution** — every fenced code block tagged ``python`` is
  executed in a fresh namespace (with ``src/`` importable).  Blocks
  tagged anything else (``bash``, ``text``, ``pycon``, untagged) are
  skipped, so shell quickstarts and pseudocode stay illustrative while
  Python examples are guaranteed to keep working.
* **Link resolution** — every relative Markdown link target
  (``[text](path)``) must exist on disk, resolved against the linking
  file's directory.  External (``http(s)://``, ``mailto:``) links are
  ignored.  Anchors are checked too: a pure-anchor ``#section`` link
  must name a heading of its own file, and a ``path#anchor`` target
  pointing at a Markdown file must name a heading of *that* file
  (GitHub-style slugs, duplicate headings numbered ``-1``, ``-2``, ...).

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/check_docs.py

Exit code 0 when docs are healthy; 1 with a per-failure report otherwise.
``tests/test_docs.py`` runs the same checks inside the tier-1 suite.
"""

from __future__ import annotations

import functools
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Directories never scanned for Markdown.
EXCLUDED_DIRS = {".git", ".pytest_cache", "__pycache__", ".hypothesis"}

_FENCE = re.compile(
    r"^```(?P<tag>[^\n`]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
# Inline markdown links [text](target); images ![alt](target) match too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}[ \t]+(.+?)[ \t]*$", re.MULTILINE)


def markdown_files(root: pathlib.Path = REPO_ROOT) -> list[pathlib.Path]:
    """Every tracked-ish Markdown file under ``root``."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if not EXCLUDED_DIRS.intersection(part for part in path.parts):
            files.append(path)
    return files


def python_blocks(path: pathlib.Path) -> list[tuple[int, str]]:
    """(line number, source) for every ``python``-tagged fenced block."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE.finditer(text):
        if match.group("tag").strip() == "python":
            line = text.count("\n", 0, match.start()) + 2
            blocks.append((line, match.group("body")))
    return blocks


def check_snippets(paths: list[pathlib.Path]) -> list[str]:
    """Execute every Python snippet; return failure descriptions."""
    failures = []
    for path in paths:
        for line, source in python_blocks(path):
            label = f"{path.relative_to(REPO_ROOT)}:{line}"
            try:
                exec(compile(source, label, "exec"), {"__name__": "__docs__"})
            except Exception as error:  # noqa: BLE001 - reported, not raised
                failures.append(f"{label}: snippet raised {error!r}")
    return failures


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for one heading's text.

    Punctuation (including markup backticks/asterisks) drops out;
    underscores survive, as github-slugger keeps them.
    """
    text = re.sub(r"[^\w\s-]", "", heading.strip().lower())
    return text.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def heading_anchors(path: pathlib.Path) -> set[str]:
    """Every anchor a Markdown file's headings define (``#``-less).

    Headings inside fenced code blocks do not anchor; duplicate
    headings get ``-1``, ``-2``, ... suffixes, GitHub-style.  Cached per
    path: a heavily cross-linked page is parsed once per run, not once
    per inbound link.
    """
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for match in _HEADING.finditer(text):
        slug = _slugify(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def relative_links(path: pathlib.Path) -> list[tuple[str, str]]:
    """``(target, anchor)`` pairs for one file's relative links.

    ``target`` is empty for pure-anchor (same-file) links; ``anchor`` is
    empty when the link carries none.  Links inside fenced code blocks
    are illustrative, not navigation, and are skipped (matching
    :func:`heading_anchors`, which ignores fenced headings).
    """
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    links = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        links.append((base, anchor))
    return links


def check_links(paths: list[pathlib.Path]) -> list[str]:
    """Verify every relative link (and its anchor, for Markdown targets)
    resolves; return failure descriptions."""
    failures = []
    for path in paths:
        try:
            label = path.relative_to(REPO_ROOT)
        except ValueError:  # outside the checkout (tests use tmp dirs)
            label = path
        for target, anchor in relative_links(path):
            resolved = (path.parent / target) if target else path
            if not resolved.exists():
                failures.append(f"{label}: broken link -> {target}")
                continue
            if anchor and (not target or target.endswith(".md")):
                if anchor not in heading_anchors(resolved):
                    failures.append(
                        f"{label}: broken anchor -> {target}#{anchor}"
                    )
    return failures


def main() -> int:
    paths = markdown_files()
    failures = check_links(paths) + check_snippets(paths)
    snippet_count = sum(len(python_blocks(path)) for path in paths)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(
        f"checked {len(paths)} markdown files, {snippet_count} python "
        f"snippets: {'FAILED' if failures else 'ok'}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
