"""F5 — message complexity, and the Remark 4.1 coin-sharing ablation.

Thin pytest shim over the ``messages`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/messages.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only messages
"""

from __future__ import annotations


def test_messages(run_registered):
    run_registered("messages")
