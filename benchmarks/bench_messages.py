"""F5 — message complexity, and the Remark 4.1 coin-sharing ablation.

ss-Byz-Clock-Sync runs three coin pipelines (A1's, A2's, and its own) in
the literal reading; Remark 4.1 observes that a single pipeline suffices,
saving a constant factor in message complexity without hurting expected
convergence.  We also record how traffic scales with n for the paper's
algorithm vs the deterministic comparator.

Both experiments run through the campaign subsystem: picklable
:class:`~repro.analysis.campaign.ScenarioSpec` grids fanned out by
:func:`~repro.analysis.campaign.run_campaign`.
"""

from __future__ import annotations

from repro.analysis.campaign import (
    ScenarioSpec,
    run_campaign,
    scenario_grid,
    single_scenario_sweep,
)
from repro.analysis.tables import render_table

K = 8
SEEDS = range(4)


def test_share_coin_ablation(once, record_result, benchmark):
    """Remark 4.1: sharing the coin pipeline cuts messages, keeps O(1).

    Measured with the real GVSS coin, whose four-round dealings dominate
    traffic — the literal reading runs three pipelines (A1's, A2's, its
    own), the optimized variant runs two.
    """
    n, f = 4, 1

    def experiment():
        separate_spec = ScenarioSpec(
            n=n, f=f, k=K, coin="gvss", max_beats=120
        )
        shared_spec = ScenarioSpec(
            n=n, f=f, k=K, coin="gvss", max_beats=120, share_coin=True
        )
        separate = single_scenario_sweep(separate_spec, SEEDS)
        shared = single_scenario_sweep(shared_spec, SEEDS)
        return separate, shared

    separate, shared = once(experiment)
    rows = [
        [
            "separate pipelines",
            f"{separate.mean_messages_per_beat:.0f}",
            f"{separate.latency_summary().mean:.1f}",
            f"{separate.success_rate * 100:.0f}%",
        ],
        [
            "shared pipeline (Remark 4.1)",
            f"{shared.mean_messages_per_beat:.0f}",
            f"{shared.latency_summary().mean:.1f}",
            f"{shared.success_rate * 100:.0f}%",
        ],
    ]
    record_result(
        "messages_share_coin",
        render_table(["variant", "msgs/beat", "mean conv.", "converged"], rows),
    )
    benchmark.extra_info["separate_msgs_per_beat"] = separate.mean_messages_per_beat
    benchmark.extra_info["shared_msgs_per_beat"] = shared.mean_messages_per_beat

    assert shared.success_rate == 1.0 and separate.success_rate == 1.0
    # Two pipelines instead of three: a solid constant-factor saving.
    assert shared.mean_messages_per_beat < separate.mean_messages_per_beat * 0.85


def test_traffic_scales_quadratically_in_n(once, record_result, benchmark):
    sizes = [4, 7, 10, 13]

    def experiment():
        current = run_campaign(
            scenario_grid(sizes, ks=[K], protocol="clock-sync", max_beats=300),
            SEEDS,
        )
        deterministic = run_campaign(
            scenario_grid(sizes, ks=[K], protocol="deterministic", max_beats=100),
            SEEDS,
        )
        return {
            entry.spec.n: {
                "current": entry.sweep.mean_messages_per_beat,
                "deterministic": det.sweep.mean_messages_per_beat,
            }
            for entry, det in zip(current, deterministic)
        }

    table = once(experiment)
    rows = [
        [f"n={n}", f"{v['current']:.0f}", f"{v['deterministic']:.0f}"]
        for n, v in sorted(table.items())
    ]
    record_result(
        "messages_scaling",
        render_table(
            ["system", "current msgs/beat", "deterministic msgs/beat"], rows
        ),
    )
    benchmark.extra_info["table"] = table

    # Broadcast protocols: Θ(n^2)-flavoured growth — superlinear, bounded
    # by cubic; and the current algorithm's per-beat traffic must not blow
    # up relative to the deterministic baseline's.
    ratio = table[13]["current"] / table[4]["current"]
    assert 2 < ratio < 40
