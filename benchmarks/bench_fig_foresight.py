"""F6 — why unpredictability matters (§6.1 ablation).

Definition 2.6's unpredictability lets Lemma 4 treat the coin as
independent of the clock values it arbitrates (they were committed one
beat earlier).  We arm the targeted anti-coin adversary three ways:

* **rushing** (legal): sees the *current* beat's coin before sending;
* **foresight-1** (illegal): also sees the *next* beat's coin — it can
  steer the surviving clock value toward the value the next coin will not
  merge;
* for scale, the same attack **without** any coin knowledge.

The paper predicts rushing costs nothing asymptotically (Theorem 2 holds);
foresight degrades convergence measurably — every extra bit of prediction
buys the adversary another coin-flip survival.
"""

from __future__ import annotations

from repro.adversary.anti_coin import AntiCoinClock2Adversary
from repro.analysis.convergence import ClockConvergenceMonitor
from repro.analysis.tables import render_table
from repro.coin.oracle import OracleCoin
from repro.core.clock2 import SSByz2Clock
from repro.net.simulator import Simulation

COIN = OracleCoin(p0=0.45, p1=0.45, rounds=2)
TRIALS = 15
MAX_BEATS = 300


def _mean_latency(foresight: int | None) -> float:
    latencies = []
    for seed in range(TRIALS):
        if foresight is None:
            adversary = None
        else:
            adversary = AntiCoinClock2Adversary(COIN, foresight=foresight)
        sim = Simulation(
            7, 2, lambda i: SSByz2Clock(COIN), adversary=adversary, seed=seed
        )
        monitor = ClockConvergenceMonitor(k=2)
        sim.add_monitor(monitor)
        sim.scramble()
        sim.run(MAX_BEATS)
        beat = monitor.convergence_beat()
        latencies.append(beat if beat is not None else MAX_BEATS)
    return sum(latencies) / len(latencies)


def test_foresight_ablation(once, record_result, benchmark):
    def experiment():
        return {
            "no adversary": _mean_latency(None),
            "rushing (legal, sees beat r coin)": _mean_latency(0),
            "foresight-1 (illegal, sees beat r+1 coin)": _mean_latency(1),
        }

    means = once(experiment)
    rows = [[name, f"{mean:.1f}"] for name, mean in means.items()]
    record_result(
        "fig_foresight", render_table(["adversary", "mean beats"], rows)
    )
    benchmark.extra_info["means"] = means

    fault_free = means["no adversary"]
    rushing = means["rushing (legal, sees beat r coin)"]
    foresight = means["foresight-1 (illegal, sees beat r+1 coin)"]
    # The legal attack stays expected-constant (Theorem 2 under attack).
    assert rushing < MAX_BEATS / 3
    # The illegal upgrade hurts: slower than both the fault-free run and
    # the rushing attack (the gap quantifies unpredictability's value).
    assert foresight > fault_free
    assert foresight >= rushing
