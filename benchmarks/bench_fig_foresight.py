"""F6 — why unpredictability matters (§6.1 ablation).

Thin pytest shim over the ``fig_foresight`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/fig_foresight.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only fig_foresight
"""

from __future__ import annotations


def test_fig_foresight(run_registered):
    run_registered("fig_foresight")
