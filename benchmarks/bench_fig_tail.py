"""F2 — geometric convergence tail (Theorem 2's discussion).

"If at some beat the algorithm has not yet converged, then it has a
constant probability of converging in the next beat.  Thus ... the
probability that ss-Byz-2-Clock does not converge within l·Δ beats
decreases exponentially with l."

We measure the survival function P(latency > b) of ss-Byz-2-Clock over
many seeds and check it halves (at least) every fixed stride — i.e. the
tail is bounded by a geometric.
"""

from __future__ import annotations

from repro.analysis.convergence import ClockConvergenceMonitor
from repro.analysis.stats import geometric_tail_rate
from repro.analysis.tables import render_table
from repro.coin.oracle import OracleCoin
from repro.core.clock2 import SSByz2Clock
from repro.net.simulator import Simulation

COIN = OracleCoin(p0=0.35, p1=0.35, rounds=3)
TRIALS = 80
MAX_BEATS = 120


def _latencies() -> list[int]:
    latencies = []
    for seed in range(TRIALS):
        sim = Simulation(7, 2, lambda i: SSByz2Clock(COIN), seed=seed)
        monitor = ClockConvergenceMonitor(k=2)
        sim.add_monitor(monitor)
        sim.scramble()
        sim.run(MAX_BEATS)
        beat = monitor.convergence_beat()
        latencies.append(beat if beat is not None else MAX_BEATS)
    return latencies


def test_tail_decays_geometrically(once, record_result, benchmark):
    latencies = once(_latencies)
    checkpoints = [4, 8, 16, 32, 64]
    survival = {
        b: sum(1 for v in latencies if v > b) / len(latencies)
        for b in checkpoints
    }
    rate = geometric_tail_rate(latencies)
    rows = [[f"beat {b}", f"{p:.3f}"] for b, p in survival.items()]
    rows.append(["fitted per-beat success", f"{rate:.3f}"])
    record_result(
        "fig_tail", render_table(["P(not converged by ...)", "value"], rows)
    )
    benchmark.extra_info["survival"] = survival
    benchmark.extra_info["per_beat_success"] = rate

    # Shape assertions: monotone, sub-halving per doubling, empty far tail.
    values = [survival[b] for b in checkpoints]
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert survival[8] < 0.7
    assert survival[32] <= 0.1
    assert survival[64] <= 0.02
    assert rate > 0.1  # a per-beat constant, not inverse-polynomial
