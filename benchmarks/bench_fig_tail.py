"""F2 — geometric convergence tail (Theorem 2's discussion).

Thin pytest shim over the ``fig_tail`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/fig_tail.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only fig_tail
"""

from __future__ import annotations


def test_fig_tail(run_registered):
    run_registered("fig_tail")
