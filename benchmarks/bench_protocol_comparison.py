"""Cross-protocol comparison: every registered protocol at matched n/f.

Thin pytest shim over the ``protocol_comparison`` registration in the
benchmark registry — the experiment's full definition (measurement,
metrics, qualitative checks) lives in
``src/repro/bench/suites/protocol_comparison.py``.  Running this file
executes the benchmark at the full tier and regenerates its blocks under
``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only protocol_comparison
"""

from __future__ import annotations


def test_protocol_comparison(run_registered):
    run_registered("protocol_comparison")


if __name__ == "__main__":  # standalone entry point, matching its siblings
    import sys

    from repro.cli import main

    args = ["bench", "run", "--only", "protocol_comparison"]
    if "--smoke" in sys.argv[1:]:
        args += ["--tier", "smoke"]
    sys.exit(main(args))
