"""End-to-end cost of the full GVSS stack (engineering bench).

Thin pytest shim over the ``gvss_stack`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/gvss_stack.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only gvss_stack
"""

from __future__ import annotations


def test_gvss_stack(run_registered):
    run_registered("gvss_stack")
