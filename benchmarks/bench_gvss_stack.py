"""End-to-end wall-clock cost of the full GVSS stack (engineering bench).

Not a paper artifact: this one exists so regressions in the algebraic
substrate (field ops, Berlekamp-Welch) show up as timing changes.  It runs
the complete ss-Byz-Clock-Sync over the real Feldman-Micali-style coin —
three GVSS pipelines, n dealings each, four rounds deep — and reports
simulated beats per second.
"""

from __future__ import annotations

from repro.analysis.convergence import ClockConvergenceMonitor
from repro.coin.feldman_micali import FeldmanMicaliCoin
from repro.core.clock_sync import SSByzClockSync
from repro.net.simulator import Simulation


def test_full_stack_gvss_clock_sync(benchmark, record_result):
    n, f, k = 4, 1, 16
    beats = 40

    def run():
        coin_factory = lambda: FeldmanMicaliCoin(n, f)
        sim = Simulation(
            n, f, lambda i: SSByzClockSync(k, coin_factory), seed=3
        )
        monitor = ClockConvergenceMonitor(k=k)
        sim.add_monitor(monitor)
        sim.scramble()
        sim.run(beats)
        return monitor.convergence_beat(), sim.stats.total_messages

    converged_beat, total_messages = benchmark.pedantic(
        run, rounds=3, iterations=1
    )
    record_result(
        "gvss_stack",
        f"n={n} f={f} k={k}: converged at beat {converged_beat}, "
        f"{total_messages} messages over {beats} beats "
        f"({total_messages / beats:.0f}/beat)",
    )
    assert converged_beat is not None
    benchmark.extra_info["messages_per_beat"] = total_messages / beats
