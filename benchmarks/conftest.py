"""Shared benchmark support.

Every bench regenerates one experiment from DESIGN.md's index (T1, F1-F8),
asserts the paper's qualitative claim (the *shape*: who wins, by what
rough factor, where the crossover sits), stores the measured numbers in
``benchmark.extra_info``, and appends a human-readable block to
``benchmarks/results/`` so EXPERIMENTS.md can quote real output.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Write (and echo) one experiment's rendered output block."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n[{name}]\n{text}")

    return _record


@pytest.fixture
def once(benchmark):
    """Run the measured experiment exactly once under the benchmark timer.

    Convergence latencies are measured in *beats* inside the experiment;
    the wall-clock timing pytest-benchmark reports is secondary (it tracks
    simulation cost, which the message-complexity analysis cares about).
    """

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _once
