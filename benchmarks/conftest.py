"""Shared benchmark support.

Every ``bench_*.py`` file here is a thin pytest shim over one
registration in the benchmark registry (``src/repro/bench/suites/`` —
see ``python -m repro bench list``).  Running a shim executes its
benchmark at the full tier, regenerates the human-readable blocks and
raw JSON under ``benchmarks/results/``, and fails if any of the
benchmark's qualitative claims (the *shape* the paper argues: who wins,
by what rough factor, where the crossover sits) stop holding.
``docs/protocol.md`` maps each claim back to the paper; CI runs the
smoke tier plus the regression gate (``python -m repro bench run --tier
smoke && python -m repro bench gate``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def run_registered():
    """Run one registered benchmark at a tier; fail on its own checks."""

    def _run(name: str, tier: str = "full"):
        from repro.bench import get_benchmark, run_benchmark

        report = run_benchmark(
            get_benchmark(name), tier, results_dir=RESULTS_DIR
        )
        assert not report.outcome.failures, report.outcome.failures
        return report

    return _run
