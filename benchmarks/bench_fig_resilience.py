"""F3 — the resilience boundary: f < n/3 is tight.

Thin pytest shim over the ``fig_resilience`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/fig_resilience.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only fig_resilience
"""

from __future__ import annotations


def test_fig_resilience(run_registered):
    run_registered("fig_resilience")
