"""F3 — the resilience boundary: f < n/3 is tight.

Theorem 4 claims optimal resiliency.  We probe the boundary with the
bisector attack (two-sided majority pushing, coin-aware, model-legal):

* at n = 3f + 1 (within the bound) it cannot hold two camps — only one
  value can muster honest support n - 2f — so convergence stays constant;
* at n = 3f (one node beyond the bound) it pins two camps of correct nodes
  at opposite clock values forever once it wins a single coin flip.
"""

from __future__ import annotations

from repro.adversary.bisector import BisectorAdversary
from repro.analysis.convergence import ClockConvergenceMonitor
from repro.analysis.tables import render_table
from repro.coin.oracle import OracleCoin
from repro.core.clock2 import SSByz2Clock
from repro.net.simulator import Simulation

COIN = OracleCoin(p0=0.4, p1=0.4, rounds=2)
TRIALS = 10
MAX_BEATS = 150


def _stall_rate(n: int, f: int) -> float:
    stalls = 0
    for seed in range(TRIALS):
        sim = Simulation(
            n,
            f,
            lambda i: SSByz2Clock(COIN),
            adversary=BisectorAdversary(COIN),
            seed=seed,
            enforce_resilience=False,
        )
        monitor = ClockConvergenceMonitor(k=2)
        sim.add_monitor(monitor)
        sim.scramble()
        sim.run(MAX_BEATS)
        if monitor.convergence_beat() is None:
            stalls += 1
    return stalls / TRIALS


def test_resilience_boundary(once, record_result, benchmark):
    def experiment():
        return {
            "n=3f+1 (f=2, n=7)": _stall_rate(7, 2),
            "n=3f   (f=2, n=6)": _stall_rate(6, 2),
            "n=3f+1 (f=3, n=10)": _stall_rate(10, 3),
            "n=3f   (f=3, n=9)": _stall_rate(9, 3),
        }

    rates = once(experiment)
    rows = [[name, f"{rate * 100:.0f}%"] for name, rate in rates.items()]
    record_result(
        "fig_resilience",
        render_table([f"configuration ({MAX_BEATS}-beat stall rate)", "stalled"], rows),
    )
    benchmark.extra_info["stall_rates"] = rates

    # Within the bound: never stalls.  One past it: stalls most of the time
    # (the attack loses only its opening coin flips).
    assert rates["n=3f+1 (f=2, n=7)"] == 0.0
    assert rates["n=3f+1 (f=3, n=10)"] == 0.0
    assert rates["n=3f   (f=2, n=6)"] >= 0.5
    assert rates["n=3f   (f=3, n=9)"] >= 0.5
