"""T1 — Table 1 reproduction: convergence/resilience of the three families.

Paper's Table 1 (claims):

    [10]  sync, probabilistic   O(2^(2(n-f)))   f < n/3
    [15]  sync, deterministic   O(f)            f < n/4
    [7]   sync, deterministic   O(f)            f < n/3
    current sync, probabilistic O(1) expected   f < n/3

We measure each family on the same k-Clock instance from scrambled memory.
Absolute beat counts are ours; the *ordering and growth shapes* are the
paper's claims under test.
"""

from __future__ import annotations

from repro.analysis.tables import render_table, table1_comparison

HEADERS = ["paper row", "claimed conv.", "resilience", "config", "measured", "ok"]


def test_table1_row_dolev_welch(once, record_result, benchmark):
    # Same k-Clock instance (k=8) as the other rows would use at n=10, but
    # the exponential family needs a cap: latencies are censored at 600.
    rows = once(
        table1_comparison,
        n=10,
        f=3,
        k=4,
        seeds=range(6),
        max_beats=600,
        families=("dolev-welch",),
    )
    row = rows[0]
    latencies = list(row.sweep.latencies) + [600] * row.sweep.failure_count
    mean = sum(latencies) / len(latencies)
    benchmark.extra_info["mean_beats_censored"] = mean
    record_result(
        "table1_dolev_welch",
        render_table(HEADERS, [row.cells()])
        + f"\n(censored mean over all seeds: {mean:.0f} beats)",
    )
    # Exponential family: an order of magnitude above the constant-time
    # row at the same system size (compare test_table1_row_current's < 40).
    assert mean > 60


def test_table1_row_deterministic(once, record_result, benchmark):
    rows = once(
        table1_comparison,
        n=10,
        f=3,
        k=8,
        seeds=range(5),
        max_beats=120,
        families=("deterministic",),
    )
    row = rows[0]
    assert row.sweep.success_rate == 1.0
    latencies = row.sweep.latencies
    benchmark.extra_info["latencies"] = latencies
    record_result("table1_deterministic", render_table(HEADERS, [row.cells()]))
    # Deterministic: every seed identical, and linear-in-f sized (depth-1).
    assert len(set(latencies)) == 1
    assert 3 * 3 <= latencies[0] <= 2 * (2 + 3 * (3 + 1))


def test_table1_row_current(once, record_result, benchmark):
    rows = once(
        table1_comparison,
        n=10,
        f=3,
        k=8,
        seeds=range(8),
        max_beats=400,
        families=("current",),
    )
    row = rows[0]
    assert row.sweep.success_rate == 1.0
    mean = sum(row.sweep.latencies) / len(row.sweep.latencies)
    benchmark.extra_info["mean_beats"] = mean
    record_result("table1_current", render_table(HEADERS, [row.cells()]))
    # Expected-constant: small mean, not tied to f or n.
    assert mean < 40


def test_table1_full_rendering(once, record_result):
    """The combined table at one configuration, like the paper prints it."""
    rows = once(
        table1_comparison,
        n=7,
        f=2,
        k=4,
        seeds=range(5),
        max_beats=400,
    )
    text = render_table(HEADERS, [row.cells() for row in rows])
    record_result("table1_combined", text)
    by_name = {row.paper_row: row for row in rows}
    det = by_name["[15]/[7] sync, deterministic"].sweep
    cur = by_name["current paper, probabilistic"].sweep
    assert det.success_rate == 1.0 and cur.success_rate == 1.0
