"""T1 — Table 1 reproduction: convergence/resilience of the families.

Thin pytest shim over the ``table1`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/table1.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only table1
"""

from __future__ import annotations


def test_table1(run_registered):
    run_registered("table1")
