"""Dynamic-world stabilization: re-convergence across membership churn.

Thin pytest shim over the ``stabilization_under_churn`` registration in
the benchmark registry — the experiment's full definition (the churn
script, metrics, qualitative checks) lives in
``src/repro/bench/suites/stabilization_under_churn.py``.  Running this
file executes the benchmark at the full tier and regenerates its blocks
under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only stabilization_under_churn
"""

from __future__ import annotations


def test_stabilization_under_churn(run_registered):
    run_registered("stabilization_under_churn")
