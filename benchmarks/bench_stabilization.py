"""F7 — self-stabilization: recovery from mid-run transient faults.

Thin pytest shim over the ``stabilization`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/stabilization.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only stabilization
"""

from __future__ import annotations


def test_stabilization(run_registered):
    run_registered("stabilization")
