"""F7 — self-stabilization: recovery from mid-run transient faults.

Definition 3.2's convergence is from *any* state, so recovery after a
mid-run memory storm must look exactly like initial convergence: expected
constant for the paper's algorithm, one agreement cycle for the
deterministic baseline.  We also storm the network with phantom messages
(Definition 2.2's pre-coherence condition) during the fault.
"""

from __future__ import annotations

from repro.analysis.convergence import ClockConvergenceMonitor
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table, standard_families
from repro.faults.network_faults import inject_phantom_storm
from repro.net.simulator import Simulation

K = 8
STORM_BEAT = 60
TRIALS = 8


def _recovery_latencies(family: str, n: int, f: int, max_beats: int):
    initial, recovery = [], []
    for seed in range(TRIALS):
        factory = standard_families(n, f, K)[family]
        sim = Simulation(n, f, factory, seed=seed)
        monitor = ClockConvergenceMonitor(k=K)
        sim.add_monitor(monitor)
        sim.scramble()
        sim.run(STORM_BEAT)
        sim.scramble()
        inject_phantom_storm(sim, ["root", "root/coin", "root/A/A1"], count=200)
        sim.run(max_beats)
        first = monitor.beats_to_converge(until_beat=STORM_BEAT)
        second = monitor.beats_to_converge(from_beat=STORM_BEAT + 1)
        if first is not None:
            initial.append(first)
        if second is not None:
            recovery.append(second)
    return initial, recovery


def test_recovery_equals_initial_convergence(once, record_result, benchmark):
    def experiment():
        return {
            "current": _recovery_latencies("current", 7, 2, 300),
            "deterministic": _recovery_latencies("deterministic", 7, 2, 120),
        }

    results = once(experiment)
    rows = []
    for family, (initial, recovery) in results.items():
        rows.append(
            [
                family,
                f"{summarize([float(v) for v in initial]).mean:.1f}",
                f"{summarize([float(v) for v in recovery]).mean:.1f}",
                f"{len(recovery)}/{TRIALS}",
            ]
        )
    record_result(
        "stabilization",
        render_table(
            ["family", "initial conv. (beats)", "post-storm recovery", "recovered"],
            rows,
        ),
    )
    benchmark.extra_info["results"] = {
        family: {"initial": initial, "recovery": recovery}
        for family, (initial, recovery) in results.items()
    }

    for family, (initial, recovery) in results.items():
        assert len(initial) == TRIALS, f"{family}: initial convergence failed"
        assert len(recovery) == TRIALS, f"{family}: recovery failed"
    current_initial, current_recovery = results["current"]
    mean_initial = sum(current_initial) / TRIALS
    mean_recovery = sum(current_recovery) / TRIALS
    # Self-stabilization: recovering is no harder than starting (within a
    # generous constant band — both are a handful of beats).
    assert mean_recovery < mean_initial * 3 + 10
