"""Link-condition sweep: convergence vs. delay bound and loss rate.

Thin pytest shim over the ``link_conditions`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/link_conditions.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only link_conditions
"""

from __future__ import annotations


def test_link_conditions(run_registered):
    run_registered("link_conditions")


if __name__ == "__main__":  # legacy standalone entry point (CI used to
    # call this directly; ``--smoke`` maps to the smoke tier)
    import sys

    from repro.cli import main

    args = ["bench", "run", "--only", "link_conditions"]
    if "--smoke" in sys.argv[1:]:
        args += ["--tier", "smoke"]
    sys.exit(main(args))
