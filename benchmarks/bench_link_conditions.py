"""Link-condition sweep: convergence vs. delay bound and loss rate.

The paper's guarantees (expected-constant convergence, Table 1) assume the
non-faulty network of Definition 2.2 — every message delivered within its
beat.  This bench measures what happens just outside that assumption, the
regime the follow-on literature (fault-resistant asynchronous clock
functions, bounded-delay pulse resynchronization) targets:

* **delay sweep** — ``BoundedDelayLinks(max_delay=d)`` for d ∈ 0..3;
* **loss sweep** — ``LossyLinks(loss=p)`` for p ∈ {0, 2%, 5%, 10%, 20%};

each crossed with ss-Byz-Clock-Sync (oracle coin) and the Table-1
baselines (``deterministic``, ``dolev-welch``), reporting success rate and
mean convergence latency per cell.  Expected shape: omission loss degrades
ss-Byz-Clock-Sync *gracefully* (latency grows, success stays high), while
any delay bound ≥ 1 violates the same-beat counting the proofs lean on and
collapses Definition-3.2 closure for the randomized protocols — which is
exactly why the bounded-delay literature redesigns the protocol rather
than re-running it.  Dolev-Welch's unbounded-counter max-flooding, by
contrast, shrugs off moderate loss and even tolerates delays at small
sizes — its weakness is the counter, not the link.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_link_conditions.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_link_conditions.py --smoke  # CI guard

Smoke mode runs a reduced grid and exits non-zero if perfect-link
clock-sync fails to converge (the no-op guarantee) or the harness errors.
Both modes write ``benchmarks/results/link_conditions.json`` (+ ``.txt``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Protocols crossed with every link condition (name, ScenarioSpec kwargs).
PROTOCOLS = (
    ("clock-sync", {"protocol": "clock-sync", "coin": "oracle"}),
    ("deterministic", {"protocol": "deterministic"}),
    ("dolev-welch", {"protocol": "dolev-welch"}),
)

FULL = {
    "n": 7,
    "f": 2,
    "k": 8,
    "seeds": 10,
    "max_beats": 300,
    "delays": (0, 1, 2, 3),
    "losses": (0.0, 0.02, 0.05, 0.1, 0.2),
}

SMOKE = {
    "n": 4,
    "f": 1,
    "k": 6,
    "seeds": 3,
    "max_beats": 150,
    "delays": (0, 2),
    "losses": (0.0, 0.1),
}


def _specs(params: dict) -> list:
    from repro.analysis.campaign import ScenarioSpec

    specs = []
    links: list[tuple[str, str, tuple]] = [("perfect", "perfect", ())]
    links += [
        ("delay", f"delay d={d}", (("max_delay", d),))
        for d in params["delays"]
        if d > 0
    ]
    links += [
        ("lossy", f"loss p={p:g}", (("loss", p),))
        for p in params["losses"]
        if p > 0
    ]
    for protocol_name, kwargs in PROTOCOLS:
        for link, condition, link_params in links:
            specs.append(
                (
                    protocol_name,
                    condition,
                    ScenarioSpec(
                        n=params["n"],
                        f=params["f"],
                        k=params["k"],
                        max_beats=params["max_beats"],
                        link=link,
                        link_params=link_params,
                        tag=condition,
                        **kwargs,
                    ),
                )
            )
    return specs


def run_sweep(params: dict, workers: int | None = None) -> dict:
    """Run the protocol × link-condition matrix; return a JSON record."""
    from repro.analysis.campaign import run_campaign

    labelled = _specs(params)
    entries = run_campaign(
        [spec for _, _, spec in labelled],
        seeds=range(params["seeds"]),
        workers=workers,
    )
    rows = []
    for (protocol, condition, _spec), entry in zip(labelled, entries):
        sweep = entry.sweep
        latencies = sweep.latencies
        rows.append(
            {
                "protocol": protocol,
                "condition": condition,
                "link": entry.spec.link,
                "link_params": dict(entry.spec.link_params),
                "success_rate": sweep.success_rate,
                "mean_latency": (
                    sum(latencies) / len(latencies) if latencies else None
                ),
                "max_latency": max(latencies) if latencies else None,
                "mean_dropped": sweep.mean_dropped_messages,
                "mean_delayed": sweep.mean_delayed_messages,
            }
        )
    return {
        "experiment": "convergence under degraded links",
        "n": params["n"],
        "f": params["f"],
        "k": params["k"],
        "seeds": params["seeds"],
        "max_beats": params["max_beats"],
        "rows": rows,
    }


def _render(report: dict) -> str:
    header = (
        f"{'protocol':<14} | {'condition':<12} | {'success':>7} | "
        f"{'mean conv':>9} | {'max conv':>8} | {'dropped/run':>11}"
    )
    lines = [
        f"link-condition sweep: n={report['n']} f={report['f']} "
        f"k={report['k']}, {report['seeds']} seeds, "
        f"budget {report['max_beats']} beats",
        header,
        "-" * len(header),
    ]
    for row in report["rows"]:
        mean = "-" if row["mean_latency"] is None else f"{row['mean_latency']:.1f}"
        peak = "-" if row["max_latency"] is None else f"{row['max_latency']}"
        lines.append(
            f"{row['protocol']:<14} | {row['condition']:<12} | "
            f"{row['success_rate'] * 100:>6.0f}% | {mean:>9} | {peak:>8} | "
            f"{row['mean_dropped']:>11.0f}"
        )
    return "\n".join(lines)


def _write_outputs(report: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "link_conditions.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    (RESULTS_DIR / "link_conditions.txt").write_text(
        _render(report) + "\n", encoding="utf-8"
    )


def _check(report: dict) -> list[str]:
    """The qualitative claims the sweep must reproduce."""
    failures = []
    by_cell = {(r["protocol"], r["condition"]): r for r in report["rows"]}
    for protocol in ("clock-sync", "deterministic", "dolev-welch"):
        perfect = by_cell[(protocol, "perfect")]
        # Expected-constant (clock-sync) and f+1-linear (deterministic)
        # protocols must always make the budget under perfect links;
        # Dolev-Welch is Table 1's expected-*exponential* baseline, so for
        # it we only demand no degraded cell beats the perfect one.
        if protocol != "dolev-welch" and perfect["success_rate"] < 1.0:
            failures.append(
                f"{protocol} under perfect links must always converge, got "
                f"{perfect['success_rate']:.0%}"
            )
        if perfect["mean_dropped"] != 0:
            failures.append(f"{protocol}: perfect links dropped messages")
        for row in report["rows"]:
            if (
                row["protocol"] == protocol
                and row["success_rate"] > perfect["success_rate"]
            ):
                failures.append(
                    f"{protocol}: degraded cell {row['condition']} converged "
                    "more often than perfect links"
                )
    lossy_cells = [
        r for r in report["rows"]
        if r["protocol"] == "clock-sync" and r["condition"].startswith("loss")
    ]
    if lossy_cells and max(r["success_rate"] for r in lossy_cells) == 0.0:
        failures.append("clock-sync failed at every loss rate; expected "
                        "graceful degradation at small p")
    return failures


# -- pytest-benchmark entry point (same harness as the other benches) -----


def test_link_condition_sweep(once, record_result, benchmark):
    """Loss degrades gracefully; perfect links stay a no-op baseline."""
    report = once(run_sweep, FULL)
    record_result("link_conditions", _render(report))
    (RESULTS_DIR / "link_conditions.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    benchmark.extra_info["rows"] = report["rows"]
    failures = _check(report)
    assert not failures, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced grid + invariant checks (CI guard); does not "
             "overwrite the checked-in full-sweep results",
    )
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    started = time.perf_counter()
    report = run_sweep(params, workers=args.workers)
    elapsed = time.perf_counter() - started
    print(_render(report))
    print(f"\nsweep completed in {elapsed:.1f}s")
    if not args.smoke:
        _write_outputs(report)
        print(f"wrote {RESULTS_DIR / 'link_conditions.json'}")
    failures = _check(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
