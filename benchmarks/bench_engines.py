"""Engine micro-benchmark: beats/sec of ReferenceEngine vs FastEngine.

Thin pytest shim over the ``engines`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/engines.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only engines
"""

from __future__ import annotations


def test_engines(run_registered):
    run_registered("engines")


if __name__ == "__main__":  # legacy standalone entry point (CI used to
    # call this directly; ``--smoke`` maps to the smoke tier)
    import sys

    from repro.cli import main

    args = ["bench", "run", "--only", "engines"]
    if "--smoke" in sys.argv[1:]:
        args += ["--tier", "smoke"]
    sys.exit(main(args))
