"""Engine micro-benchmark: beats/sec of ReferenceEngine vs FastEngine.

Times the full ss-Byz-Clock-Sync stack (k=8, oracle coin, scrambled start,
fault-free) on both engines across n ∈ {4, 16, 64} and reports beats/sec.
Emits ``benchmarks/results/engines.json`` alongside the human-readable
``engines.txt`` block, so regression tooling can diff raw numbers.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_engines.py          # full matrix
    PYTHONPATH=src python benchmarks/bench_engines.py --smoke  # CI guard

The smoke mode times 200 beats of ``SSByzClockSync(k=8)`` on both engines
at one small size and exits non-zero if the fast engine regresses to more
than 2x the reference engine's wall time.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: (n, f, beats timed) — beat counts shrink with n to keep runtime bounded.
SIZES = ((4, 1, 200), (16, 5, 50), (64, 21, 10))


def _build_simulation(n: int, f: int, engine: str, seed: int = 0):
    from repro.coin.oracle import OracleCoin
    from repro.core.clock_sync import SSByzClockSync
    from repro.net.simulator import Simulation

    simulation = Simulation(
        n,
        f,
        lambda i: SSByzClockSync(8, lambda: OracleCoin()),
        seed=seed,
        engine=engine,
    )
    simulation.scramble()
    return simulation


def time_engine(
    n: int, f: int, engine: str, beats: int, repeats: int = 3
) -> float:
    """Best-of-``repeats`` beats/sec for one engine at one system size."""
    best = float("inf")
    for _ in range(repeats):
        simulation = _build_simulation(n, f, engine)
        simulation.run(2)  # warm caches (path interning, inbox buffers)
        started = time.perf_counter()
        simulation.run(beats)
        best = min(best, time.perf_counter() - started)
    return beats / best


def run_microbench(sizes=SIZES, repeats: int = 3) -> dict:
    """Measure both engines across the size matrix; return a JSON record."""
    rows = []
    for n, f, beats in sizes:
        reference = time_engine(n, f, "reference", beats, repeats)
        fast = time_engine(n, f, "fast", beats, repeats)
        rows.append(
            {
                "n": n,
                "f": f,
                "beats_timed": beats,
                "reference_beats_per_sec": reference,
                "fast_beats_per_sec": fast,
                "speedup": fast / reference,
            }
        )
    return {"protocol": "SSByzClockSync(k=8, oracle)", "results": rows}


def _render(report: dict) -> str:
    lines = [
        f"{'system':<12} | {'reference b/s':>13} | {'fast b/s':>10} | speedup",
        "-" * 54,
    ]
    for row in report["results"]:
        lines.append(
            f"n={row['n']:<3} f={row['f']:<3}  | "
            f"{row['reference_beats_per_sec']:>13.1f} | "
            f"{row['fast_beats_per_sec']:>10.1f} | "
            f"{row['speedup']:.2f}x"
        )
    return "\n".join(lines)


def _write_outputs(report: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engines.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    (RESULTS_DIR / "engines.txt").write_text(
        _render(report) + "\n", encoding="utf-8"
    )


def smoke(beats: int = 200, n: int = 7, f: int = 2) -> int:
    """CI guard: fast must not exceed 2x the reference engine's wall time."""
    timings = {}
    for engine in ("reference", "fast"):
        simulation = _build_simulation(n, f, engine)
        simulation.run(2)
        started = time.perf_counter()
        simulation.run(beats)
        timings[engine] = time.perf_counter() - started
    ratio = timings["fast"] / timings["reference"]
    print(
        f"smoke: {beats} beats at n={n}: reference {timings['reference']:.2f}s, "
        f"fast {timings['fast']:.2f}s (fast/reference {ratio:.2f})"
    )
    if ratio > 2.0:
        print("FAIL: fast engine regressed to >2x reference wall time")
        return 1
    print("ok")
    return 0


# -- pytest-benchmark entry point (same harness as the other benches) -----


def test_fast_engine_speedup(once, record_result, benchmark):
    """The fast engine must deliver ≥2x beats/sec at n=64."""
    report = once(run_microbench)
    record_result("engines", _render(report))
    (RESULTS_DIR / "engines.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    benchmark.extra_info["results"] = report["results"]

    by_n = {row["n"]: row for row in report["results"]}
    # The fast engine may never lose outright at any size...
    for row in report["results"]:
        assert row["speedup"] > 0.9, row
    # ...and the Θ(n²)-copy elimination must pay off at scale.
    assert by_n[64]["speedup"] >= 2.0, by_n[64]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="200-beat two-engine regression guard (CI)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    report = run_microbench(repeats=args.repeats)
    _write_outputs(report)
    print(_render(report))
    by_n = {row["n"]: row for row in report["results"]}
    if by_n[64]["speedup"] < 2.0:
        print("FAIL: fast engine below 2x at n=64")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
