"""Live-runtime throughput: beats/sec and messages/sec on LocalTransport.

Thin pytest shim over the ``runtime_throughput`` registration in the
benchmark registry — the experiment's full definition (measurement,
metrics, qualitative checks) lives in
``src/repro/bench/suites/runtime_throughput.py``.  Running this file
executes the benchmark at the full tier and regenerates its blocks under
``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only runtime_throughput
"""

from __future__ import annotations


def test_runtime_throughput(run_registered):
    run_registered("runtime_throughput")


if __name__ == "__main__":  # standalone entry point, matching its siblings
    import sys

    from repro.cli import main

    args = ["bench", "run", "--only", "runtime_throughput"]
    if "--smoke" in sys.argv[1:]:
        args += ["--tier", "smoke"]
    sys.exit(main(args))
