"""F8 — §5: recursive doubling pays log k; ss-Byz-Clock-Sync does not.

The paper gives two routes to a k-clock.  The recursive-doubling tower
("any 2^(k+1)-Clock ... with A1 that solves 2^k-Clock and A2 that solves
2-Clock") stacks log2(k) levels, each of which must converge before the
next can; ss-Byz-Clock-Sync's 4-phase vote settles every bit of the clock
in one shot.  Convergence latency vs k should grow for the tower and stay
flat for ss-Byz-Clock-Sync — the reason the paper builds the latter.
"""

from __future__ import annotations

from repro.analysis.convergence import ClockConvergenceMonitor
from repro.analysis.tables import render_table
from repro.coin.oracle import OracleCoin
from repro.core.clock_sync import SSByzClockSync
from repro.core.power_of_two import RecursiveDoublingClock
from repro.net.simulator import Simulation

TRIALS = 6
MAX_BEATS = 600
COIN_FACTORY = lambda: OracleCoin(p0=0.4, p1=0.4, rounds=2)


def _mean_latency(factory, k):
    latencies = []
    for seed in range(TRIALS):
        sim = Simulation(4, 1, factory, seed=seed)
        monitor = ClockConvergenceMonitor(k=k)
        sim.add_monitor(monitor)
        sim.scramble()
        sim.run(MAX_BEATS)
        beat = monitor.convergence_beat()
        latencies.append(beat if beat is not None else MAX_BEATS)
    return sum(latencies) / len(latencies)


def test_logk_overhead(once, record_result, benchmark):
    def experiment():
        table = {}
        for exponent in (1, 2, 3, 4):
            k = 2**exponent
            table[k] = {
                "doubling": _mean_latency(
                    lambda i: RecursiveDoublingClock(exponent, COIN_FACTORY), k
                ),
                "clock_sync": _mean_latency(
                    lambda i: SSByzClockSync(k, COIN_FACTORY), k
                ),
            }
        return table

    table = once(experiment)
    rows = [
        [f"k={k}", f"{v['doubling']:.1f}", f"{v['clock_sync']:.1f}"]
        for k, v in sorted(table.items())
    ]
    record_result(
        "fig_logk",
        render_table(
            ["modulus", "recursive doubling (beats)", "ss-Byz-Clock-Sync"], rows
        ),
    )
    benchmark.extra_info["table"] = table

    doubling = [table[k]["doubling"] for k in sorted(table)]
    clock_sync = [table[k]["clock_sync"] for k in sorted(table)]
    # The tower's latency grows with log k...
    assert doubling[-1] > doubling[0] * 1.5
    # ...while ss-Byz-Clock-Sync stays flat in k.
    assert max(clock_sync) < 45
    # Crossover: at large k, ss-Byz-Clock-Sync wins clearly.
    assert table[16]["clock_sync"] < table[16]["doubling"]


def test_squaring_schema_shallower_than_doubling(once, record_result, benchmark):
    """§5's second schema: squaring reaches k=16 with 2 layers instead of
    the doubling tower's 4, and converges correspondingly faster — while
    still losing to ss-Byz-Clock-Sync's flat construction."""
    from repro.core.cascade import squaring_tower
    from repro.core.clock2 import SSByz2Clock

    def experiment():
        k = 16
        return {
            "doubling (4 layers)": _mean_latency(
                lambda i: RecursiveDoublingClock(4, COIN_FACTORY), k
            ),
            "squaring (2 layers)": _mean_latency(
                lambda i: squaring_tower(2, lambda: SSByz2Clock(COIN_FACTORY())),
                k,
            ),
            "ss-Byz-Clock-Sync": _mean_latency(
                lambda i: SSByzClockSync(k, COIN_FACTORY), k
            ),
        }

    means = once(experiment)
    rows = [[name, f"{mean:.1f}"] for name, mean in means.items()]
    record_result(
        "fig_logk_squaring",
        render_table(["construction (k=16)", "mean beats"], rows),
    )
    benchmark.extra_info["means"] = means
    assert means["squaring (2 layers)"] < means["doubling (4 layers)"]
    assert means["ss-Byz-Clock-Sync"] < means["squaring (2 layers)"] * 2
