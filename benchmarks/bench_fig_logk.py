"""F8 — §5: recursive doubling pays log k; ss-Byz-Clock-Sync does not.

Thin pytest shim over the ``fig_logk`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/fig_logk.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only fig_logk
"""

from __future__ import annotations


def test_fig_logk(run_registered):
    run_registered("fig_logk")
