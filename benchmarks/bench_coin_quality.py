"""F4 — coin quality: p0 and p1 are constants (Definitions 2.6-2.8).

Measures the GVSS-based Feldman-Micali-style coin, wrapped in the
ss-Byz-Coin-Flip pipeline, under escalating attacks.  DESIGN.md's
substitution note promises these numbers instead of a re-derived
worst-case proof; the shape required by the paper is only that both
event probabilities stay positive constants.
"""

from __future__ import annotations

from repro.adversary.base import Adversary
from repro.adversary.dealer_attack import DealerAttackAdversary
from repro.adversary.mixed_dealing import MixedDealingAdversary
from repro.adversary.strategies import CrashAdversary, RandomNoiseAdversary
from repro.analysis.tables import render_table
from repro.coin.feldman_micali import FeldmanMicaliCoin
from repro.core.pipeline import CoinFlipPipeline
from repro.net.simulator import Simulation

BEATS = 60


def _measure(n: int, f: int, adversary: Adversary | None, seed: int = 1):
    coin = FeldmanMicaliCoin(n, f)
    sim = Simulation(
        n,
        f,
        lambda i: CoinFlipPipeline(coin),
        adversary=adversary,
        seed=seed,
    )
    sim.scramble()
    sim.run(coin.rounds)  # convergence window (Lemma 1)
    zeros = ones = divergent = 0
    for _ in range(BEATS):
        sim.run_beat()
        bits = {node.root.rand for node in sim.nodes.values()}
        if bits == {0}:
            zeros += 1
        elif bits == {1}:
            ones += 1
        else:
            divergent += 1
    return zeros / BEATS, ones / BEATS, divergent / BEATS


def test_coin_quality_under_attacks(once, record_result, benchmark):
    def experiment():
        scenarios = {
            "n=4 fault-free": (4, 1, None),
            "n=4 crash": (4, 1, CrashAdversary()),
            "n=4 random noise": (4, 1, RandomNoiseAdversary()),
            "n=4 dealer attack": (4, 1, DealerAttackAdversary()),
            "n=7 dealer attack": (7, 2, DealerAttackAdversary()),
        }
        return {
            name: _measure(n, f, adversary)
            for name, (n, f, adversary) in scenarios.items()
        }

    results = once(experiment)
    rows = [
        [name, f"{p0:.2f}", f"{p1:.2f}", f"{div:.2f}"]
        for name, (p0, p1, div) in results.items()
    ]
    record_result(
        "coin_quality",
        render_table(["scenario", "P(E0)", "P(E1)", "P(divergent)"], rows),
    )
    benchmark.extra_info["measured"] = {
        name: {"p0": v[0], "p1": v[1], "divergent": v[2]}
        for name, v in results.items()
    }

    p0, p1, divergent = results["n=4 fault-free"]
    assert divergent == 0.0  # fault-free GVSS coin is perfectly common
    assert 0.3 < p0 < 0.7 and 0.3 < p1 < 0.7
    for name, (p0, p1, divergent) in results.items():
        # Definition 2.6's shape: both events remain positive constants,
        # comfortably above the conservative claimed bound of 0.25... we
        # assert above 0.15 to keep the bench seed-robust and report the
        # real numbers in EXPERIMENTS.md.
        assert p0 > 0.15, f"{name}: p0 collapsed"
        assert p1 > 0.15, f"{name}: p1 collapsed"


def test_coin_breaks_under_mixed_dealing(once, record_result, benchmark):
    """The documented negative result: recovery-share equivocation on a
    half-consistent dealing destroys E0/E1 for the *simplified* coin —
    the measured boundary between our 4-round GVSS and full
    Feldman-Micali (DESIGN.md substitution notes; EXPERIMENTS.md F4)."""

    def experiment():
        return {
            "n=4 mixed dealing": _measure(4, 1, MixedDealingAdversary()),
            "n=7 mixed dealing": _measure(7, 2, MixedDealingAdversary()),
        }

    results = once(experiment)
    rows = [
        [name, f"{p0:.2f}", f"{p1:.2f}", f"{div:.2f}"]
        for name, (p0, p1, div) in results.items()
    ]
    record_result(
        "coin_quality_break",
        render_table(["scenario", "P(E0)", "P(E1)", "P(divergent)"], rows),
    )
    benchmark.extra_info["measured"] = {
        name: {"p0": v[0], "p1": v[1], "divergent": v[2]}
        for name, v in results.items()
    }
    for name, (_, _, divergent) in results.items():
        assert divergent > 0.5, (
            f"{name}: the attack should break the simplified coin — if "
            "GVSS was hardened, update DESIGN.md/EXPERIMENTS.md"
        )
