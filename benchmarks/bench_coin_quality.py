"""F4 — coin quality: p0 and p1 are constants (Definitions 2.6-2.8).

Thin pytest shim over the ``coin_quality`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/coin_quality.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only coin_quality
"""

from __future__ import annotations


def test_coin_quality(run_registered):
    run_registered("coin_quality")
