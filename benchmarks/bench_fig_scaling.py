"""F1 — convergence latency vs system size: flat / linear / exponential.

Thin pytest shim over the ``fig_scaling`` registration in the benchmark
registry — the experiment's full definition (measurement, metrics,
qualitative checks) lives in ``src/repro/bench/suites/fig_scaling.py``.
Running this file executes the benchmark at the full tier and
regenerates its blocks under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only fig_scaling
"""

from __future__ import annotations


def test_fig_scaling(run_registered):
    run_registered("fig_scaling")
