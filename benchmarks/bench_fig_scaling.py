"""F1 — convergence latency vs system size: flat / linear / exponential.

Derived figure for the paper's central comparison: sweep n with
f = ⌊(n-1)/3⌋ and plot mean convergence beats per family.  Expected
shapes: the current paper's algorithm is flat in n (expected O(1)); the
deterministic comparator grows linearly in f; the local-coin randomized
family deteriorates so fast it is only measurable at toy sizes.
"""

from __future__ import annotations

from repro.analysis.experiments import TrialConfig, run_sweep
from repro.analysis.tables import render_table, standard_families

K = 4
SEEDS = range(6)


def _mean_latency(family: str, n: int, f: int, max_beats: int) -> tuple[float, int]:
    factory = standard_families(n, f, K)[family]
    config = TrialConfig(
        n=n, f=f, k=K, protocol_factory=factory, max_beats=max_beats
    )
    sweep = run_sweep(config, SEEDS)
    if not sweep.latencies:
        return float(max_beats), sweep.failure_count
    mean = sum(sweep.latencies) / len(sweep.latencies)
    return mean, sweep.failure_count


def test_scaling_current_flat_vs_deterministic_linear(once, record_result, benchmark):
    def experiment():
        table = {}
        for n, f in ((4, 1), (7, 2), (10, 3), (13, 4)):
            table[(n, f)] = {
                "current": _mean_latency("current", n, f, 400)[0],
                "deterministic": _mean_latency("deterministic", n, f, 200)[0],
            }
        return table

    table = once(experiment)
    rows = [
        [f"n={n}, f={f}", f"{v['current']:.1f}", f"{v['deterministic']:.1f}"]
        for (n, f), v in sorted(table.items())
    ]
    record_result(
        "fig_scaling",
        render_table(["system", "current (beats)", "deterministic (beats)"], rows),
    )
    benchmark.extra_info["table"] = {str(k): v for k, v in table.items()}
    current = [v["current"] for v in table.values()]
    deterministic = [
        table[key]["deterministic"] for key in sorted(table.keys())
    ]
    # Deterministic grows monotonically with f...
    assert deterministic == sorted(deterministic)
    assert deterministic[-1] > deterministic[0] * 1.8
    # ...while the current algorithm stays within a flat constant band.
    assert max(current) < 45
    # Crossover: by n=13 the deterministic baseline has lost.
    assert table[(13, 4)]["current"] < table[(13, 4)]["deterministic"]


def test_scaling_dolev_welch_explodes(once, record_result, benchmark):
    def experiment():
        return {
            n_f: _mean_latency("dolev-welch", *n_f, 500)
            for n_f in ((4, 1), (7, 2), (10, 3))
        }

    table = once(experiment)
    rows = [
        [f"n={n}, f={f}", f"{mean:.1f}", str(dnf)]
        for (n, f), (mean, dnf) in sorted(table.items())
    ]
    record_result(
        "fig_scaling_dw",
        render_table(["system", "mean beats (DNF=500)", "DNF count"], rows),
    )
    benchmark.extra_info["table"] = {str(k): v for k, v in table.items()}
    # The exponential family deteriorates sharply with n - f.
    assert table[(10, 3)][0] > table[(4, 1)][0] * 3
