"""F1 — convergence latency vs system size: flat / linear / exponential.

Derived figure for the paper's central comparison: sweep n with
f = ⌊(n-1)/3⌋ and plot mean convergence beats per family.  Expected
shapes: the current paper's algorithm is flat in n (expected O(1)); the
deterministic comparator grows linearly in f; the local-coin randomized
family deteriorates so fast it is only measurable at toy sizes.

Ported to the campaign subsystem: one picklable
:class:`~repro.analysis.campaign.ScenarioSpec` grid per family, executed
by :func:`~repro.analysis.campaign.run_campaign`.
"""

from __future__ import annotations

from repro.analysis.campaign import run_campaign, scenario_grid
from repro.analysis.tables import render_table

K = 4
SEEDS = range(6)


def _mean_latencies(protocol: str, sizes, max_beats: int) -> dict:
    """Per-(n, f) mean convergence latency (budget on non-convergence)."""
    specs = scenario_grid(sizes, ks=[K], protocol=protocol, max_beats=max_beats)
    table = {}
    for entry in run_campaign(specs, SEEDS):
        sweep = entry.sweep
        if sweep.latencies:
            mean = sum(sweep.latencies) / len(sweep.latencies)
        else:
            mean = float(max_beats)
        table[(entry.spec.n, entry.spec.f)] = (mean, sweep.failure_count)
    return table


def test_scaling_current_flat_vs_deterministic_linear(once, record_result, benchmark):
    sizes = [4, 7, 10, 13]

    def experiment():
        current = _mean_latencies("clock-sync", sizes, 400)
        deterministic = _mean_latencies("deterministic", sizes, 200)
        return {
            key: {
                "current": current[key][0],
                "deterministic": deterministic[key][0],
            }
            for key in current
        }

    table = once(experiment)
    rows = [
        [f"n={n}, f={f}", f"{v['current']:.1f}", f"{v['deterministic']:.1f}"]
        for (n, f), v in sorted(table.items())
    ]
    record_result(
        "fig_scaling",
        render_table(["system", "current (beats)", "deterministic (beats)"], rows),
    )
    benchmark.extra_info["table"] = {str(k): v for k, v in table.items()}
    current = [v["current"] for v in table.values()]
    deterministic = [
        table[key]["deterministic"] for key in sorted(table.keys())
    ]
    # Deterministic grows monotonically with f...
    assert deterministic == sorted(deterministic)
    assert deterministic[-1] > deterministic[0] * 1.8
    # ...while the current algorithm stays within a flat constant band.
    assert max(current) < 45
    # Crossover: by n=13 the deterministic baseline has lost.
    assert table[(13, 4)]["current"] < table[(13, 4)]["deterministic"]


def test_scaling_dolev_welch_explodes(once, record_result, benchmark):
    def experiment():
        return _mean_latencies("dolev-welch", [4, 7, 10], 500)

    table = once(experiment)
    rows = [
        [f"n={n}, f={f}", f"{mean:.1f}", str(dnf)]
        for (n, f), (mean, dnf) in sorted(table.items())
    ]
    record_result(
        "fig_scaling_dw",
        render_table(["system", "mean beats (DNF=500)", "DNF count"], rows),
    )
    benchmark.extra_info["table"] = {str(k): v for k, v in table.items()}
    # The exponential family deteriorates sharply with n - f.
    assert table[(10, 3)][0] > table[(4, 1)][0] * 3
