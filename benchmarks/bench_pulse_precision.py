"""Continuous-time pulse precision: differential pin and runtime skew.

Thin pytest shim over the ``pulse_precision`` registration in the
benchmark registry — the experiment's full definition (the zero-drift
zero-delay digest pin against the reference engine, the deterministic
drifting-clock metrics, the pulse-barrier runtime's wall-clock skew)
lives in ``src/repro/bench/suites/pulse_precision.py``.  Running this
file executes the benchmark at the full tier and regenerates its blocks
under ``benchmarks/results/``.

Registry equivalent::

    PYTHONPATH=src python -m repro bench run --only pulse_precision
"""

from __future__ import annotations


def test_pulse_precision(run_registered):
    run_registered("pulse_precision")


if __name__ == "__main__":  # standalone entry point, matching its siblings
    import sys

    from repro.cli import main

    args = ["bench", "run", "--only", "pulse_precision"]
    if "--smoke" in sys.argv[1:]:
        args += ["--tier", "smoke"]
    sys.exit(main(args))
