"""Setup shim.

All metadata lives in pyproject.toml; this file exists so environments
without the ``wheel`` package (no PEP 660 editable builds) can still do
``pip install -e . --no-use-pep517`` / ``python setup.py develop``.
"""

from setuptools import setup

setup()
